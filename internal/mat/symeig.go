package mat

import (
	"math"
	"math/cmplx"
	"sort"
)

// SymEig holds the eigendecomposition of a real symmetric matrix:
// A = V·diag(Values)·Vᵀ with orthonormal V and ascending eigenvalues.
type SymEig struct {
	Values []float64
	V      *Matrix
}

// SymEigDecompose computes the eigendecomposition of a symmetric matrix
// using the cyclic Jacobi method. Only the lower triangle of a is read.
func SymEigDecompose(a *Matrix) *SymEig {
	if a.Rows != a.Cols {
		panic("mat: SymEigDecompose of non-square matrix")
	}
	n := a.Rows
	w := a.Clone()
	w.Symmetrize()
	v := Identity(n)
	const tol = 1e-14
	for sweep := 0; sweep < 100; sweep++ {
		off := 0.0
		diagScale := 0.0
		for i := 0; i < n; i++ {
			diagScale += math.Abs(w.At(i, i))
			for j := i + 1; j < n; j++ {
				off += math.Abs(w.At(i, j))
			}
		}
		if off <= tol*math.Max(diagScale, 1e-300) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) <= tol*(math.Abs(w.At(p, p))+math.Abs(w.At(q, q)))/2 {
					continue
				}
				theta := (w.At(q, q) - w.At(p, p)) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				// Rotate rows/cols p and q of w: w ← Jᵀ w J.
				for k := 0; k < n; k++ {
					wkp := w.At(k, p)
					wkq := w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk := w.At(p, k)
					wqk := w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort ascending.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] < vals[idx[b]] })
	outV := NewMatrix(n, n)
	outVals := make([]float64, n)
	for newj, oldj := range idx {
		outVals[newj] = vals[oldj]
		for i := 0; i < n; i++ {
			outV.Set(i, newj, v.At(i, oldj))
		}
	}
	return &SymEig{Values: outVals, V: outV}
}

// HermEig holds the eigendecomposition of a Hermitian matrix:
// A = V·diag(Values)·Vᴴ with unitary V and ascending real eigenvalues.
type HermEig struct {
	Values []float64
	V      *CMatrix
}

// HermEigDecompose computes the eigendecomposition of a Hermitian matrix
// with the complex cyclic Jacobi method.
func HermEigDecompose(a *CMatrix) *HermEig {
	if a.Rows != a.Cols {
		panic("mat: HermEigDecompose of non-square matrix")
	}
	n := a.Rows
	w := a.Clone()
	// Enforce Hermitian symmetry of the working copy.
	for i := 0; i < n; i++ {
		w.Set(i, i, complex(real(w.At(i, i)), 0))
		for j := i + 1; j < n; j++ {
			m := 0.5 * (w.At(i, j) + cmplx.Conj(w.At(j, i)))
			w.Set(i, j, m)
			w.Set(j, i, cmplx.Conj(m))
		}
	}
	v := CIdentity(n)
	const tol = 1e-14
	for sweep := 0; sweep < 100; sweep++ {
		off := 0.0
		diagScale := 0.0
		for i := 0; i < n; i++ {
			diagScale += math.Abs(real(w.At(i, i)))
			for j := i + 1; j < n; j++ {
				off += cmplx.Abs(w.At(i, j))
			}
		}
		if off <= tol*math.Max(diagScale, 1e-300) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				mag := cmplx.Abs(apq)
				if mag <= tol*(math.Abs(real(w.At(p, p)))+math.Abs(real(w.At(q, q))))/2 {
					continue
				}
				alpha := apq / complex(mag, 0)
				theta := (real(w.At(q, q)) - real(w.At(p, p))) / (2 * mag)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				// Unitary rotation J with J[p][p]=c, J[p][q]=s·alpha,
				// J[q][p]=−s·conj(alpha), J[q][q]=c;  w ← Jᴴ w J.
				cs := complex(c, 0)
				sa := complex(s, 0) * alpha
				sac := complex(s, 0) * cmplx.Conj(alpha)
				for k := 0; k < n; k++ {
					wkp := w.At(k, p)
					wkq := w.At(k, q)
					w.Set(k, p, cs*wkp-sac*wkq)
					w.Set(k, q, sa*wkp+cs*wkq)
				}
				for k := 0; k < n; k++ {
					wpk := w.At(p, k)
					wqk := w.At(q, k)
					w.Set(p, k, cs*wpk-cmplx.Conj(sac)*wqk)
					w.Set(q, k, cmplx.Conj(sa)*wpk+cs*wqk)
				}
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, cs*vkp-sac*vkq)
					v.Set(k, q, sa*vkp+cs*vkq)
				}
			}
		}
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = real(w.At(i, i))
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] < vals[idx[b]] })
	outV := NewCMatrix(n, n)
	outVals := make([]float64, n)
	for newj, oldj := range idx {
		outVals[newj] = vals[oldj]
		for i := 0; i < n; i++ {
			outV.Set(i, newj, v.At(i, oldj))
		}
	}
	return &HermEig{Values: outVals, V: outV}
}
