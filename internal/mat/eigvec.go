package mat

import (
	"fmt"
	"math"
	"math/cmplx"
)

// EigenDecompose returns the eigenvalues of a real square matrix together
// with a complex matrix of right eigenvectors (one column per eigenvalue,
// conjugate pairs adjacent, each column normalized to unit 2-norm).
//
// Eigenvalues come from the real Schur form; eigenvectors are recovered by
// inverse iteration with a small complex diagonal shift, which converges in
// one or two sweeps for the well-separated spectra produced by rational
// macromodels. Matrices with (numerically) repeated eigenvalues are
// rejected — the pole-residue extraction this routine feeds is not defined
// for defective systems.
func EigenDecompose(a *Matrix) ([]complex128, *CMatrix, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, nil, fmt.Errorf("mat: EigenDecompose needs a square matrix, got %d×%d", a.Rows, a.Cols)
	}
	values, err := EigenValues(a)
	if err != nil {
		return nil, nil, err
	}
	scale := a.MaxAbs()
	if scale == 0 {
		scale = 1
	}
	// Reject repeated eigenvalues: inverse iteration cannot separate them.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if cmplx.Abs(values[i]-values[j]) < 1e-9*scale && !isConjPair(values[i], values[j]) {
				return nil, nil, fmt.Errorf("mat: EigenDecompose: eigenvalues %v and %v coincide within tolerance", values[i], values[j])
			}
		}
	}
	ac := RealToComplex(a)
	vecs := NewCMatrix(n, n)
	for k := 0; k < n; k++ {
		// Conjugate pair: reuse the conjugate of the previous column.
		if k > 0 && isConjPair(values[k-1], values[k]) {
			for i := 0; i < n; i++ {
				vecs.Set(i, k, cmplx.Conj(vecs.At(i, k-1)))
			}
			continue
		}
		v, err := inverseIteration(ac, values[k], scale)
		if err != nil {
			return nil, nil, fmt.Errorf("mat: eigenvector for λ=%v: %w", values[k], err)
		}
		for i := 0; i < n; i++ {
			vecs.Set(i, k, v[i])
		}
	}
	return values, vecs, nil
}

func isConjPair(a, b complex128) bool {
	if imag(a) == 0 || imag(b) == 0 {
		return false
	}
	return cmplx.Abs(a-cmplx.Conj(b)) < 1e-9*(1+cmplx.Abs(a))
}

// inverseIteration solves (A − (λ+δ)I)·x_{m+1} = x_m to convergence, with a
// tiny shift δ keeping the system factorable.
func inverseIteration(a *CMatrix, lambda complex128, scale float64) ([]complex128, error) {
	n := a.Rows
	const maxTries = 4
	delta := complex(1e-10*scale, 0)
	for try := 0; try < maxTries; try++ {
		m := a.Clone()
		shift := lambda + delta
		for i := 0; i < n; i++ {
			m.Set(i, i, m.At(i, i)-shift)
		}
		lu, err := CLUFactor(m)
		if err != nil {
			delta *= 16
			continue
		}
		// Deterministic pseudo-random start keeps results reproducible.
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(math.Cos(float64(3*i+1)), math.Sin(float64(2*i+1)))
		}
		normalizeC(x)
		var residual float64
		for sweep := 0; sweep < 6; sweep++ {
			x = lu.SolveVec(x)
			normalizeC(x)
			residual = eigResidual(a, x, lambda)
			if residual < 1e-9*scale {
				return x, nil
			}
		}
		if residual < 1e-6*scale {
			return x, nil
		}
		delta *= 16
	}
	return nil, fmt.Errorf("inverse iteration did not converge")
}

func normalizeC(x []complex128) {
	n := CNorm2(x)
	if n == 0 {
		return
	}
	// Fix the global phase so that the largest entry is real positive —
	// makes conjugate-pair bookkeeping deterministic.
	best := 0
	for i := range x {
		if cmplx.Abs(x[i]) > cmplx.Abs(x[best]) {
			best = i
		}
	}
	phase := complex(1, 0)
	if x[best] != 0 {
		phase = x[best] / complex(cmplx.Abs(x[best]), 0)
	}
	for i := range x {
		x[i] /= phase * complex(n, 0)
	}
}

func eigResidual(a *CMatrix, x []complex128, lambda complex128) float64 {
	ax := a.MulVec(x)
	worst := 0.0
	for i := range ax {
		if d := cmplx.Abs(ax[i] - lambda*x[i]); d > worst {
			worst = d
		}
	}
	return worst
}
