// Package mat provides dense real and complex linear algebra used by the
// macromodeling stack: LU, QR, Cholesky, SVD (one-sided Jacobi), symmetric
// Jacobi eigendecomposition, Hessenberg reduction, real Schur form (Francis
// double-shift QR), and Bartels–Stewart Lyapunov/Sylvester solvers.
//
// The package is self-contained (standard library only) and tuned for the
// moderate matrix sizes that arise in rational macromodeling: state-space
// dimensions up to a few hundred and port counts up to ~100. Storage is
// row-major in flat slices.
package mat

import (
	"fmt"
	"math"
)

// Matrix is a dense, row-major real matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %d×%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewMatrixFrom builds a matrix from a slice of rows. All rows must have
// equal length.
func NewMatrixFrom(rows [][]float64) *Matrix {
	r := len(rows)
	if r == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("mat: ragged rows")
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i,j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom copies src into m; dimensions must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("mat: CopyFrom dimension mismatch")
	}
	copy(m.Data, src.Data)
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Add returns m + b.
func (m *Matrix) Add(b *Matrix) *Matrix {
	checkSameShape(m, b)
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out
}

// Sub returns m − b.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	checkSameShape(m, b)
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out
}

// Scale returns s·m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %d×%d · %d×%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	MulInto(out, m, b)
	return out
}

// MulInto computes dst = a·b. dst must be pre-sized and must not alias a or b.
func MulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("mat: MulInto shape mismatch")
	}
	n := a.Cols
	bc := b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*n : (i+1)*n]
		drow := dst.Data[i*bc : (i+1)*bc]
		for j := range drow {
			drow[j] = 0
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*bc : (k+1)*bc]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MulVec returns m·x as a new vector.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.Cols != len(x) {
		panic("mat: MulVec shape mismatch")
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// MulVecT returns mᵀ·x as a new vector.
func (m *Matrix) MulVecT(x []float64) []float64 {
	if m.Rows != len(x) {
		panic("mat: MulVecT shape mismatch")
	}
	y := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, v := range row {
			y[j] += v * xi
		}
	}
	return y
}

// FrobNorm returns the Frobenius norm.
func (m *Matrix) FrobNorm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute entry (0 for empty matrices).
func (m *Matrix) MaxAbs() float64 {
	mx := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Trace returns the sum of diagonal entries (square matrices).
func (m *Matrix) Trace() float64 {
	if m.Rows != m.Cols {
		panic("mat: Trace of non-square matrix")
	}
	s := 0.0
	for i := 0; i < m.Rows; i++ {
		s += m.Data[i*m.Cols+i]
	}
	return s
}

// Symmetrize replaces m with (m+mᵀ)/2 in place (square matrices).
func (m *Matrix) Symmetrize() {
	if m.Rows != m.Cols {
		panic("mat: Symmetrize of non-square matrix")
	}
	n := m.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := 0.5 * (m.Data[i*n+j] + m.Data[j*n+i])
			m.Data[i*n+j] = v
			m.Data[j*n+i] = v
		}
	}
}

// Slice returns a copy of the sub-matrix with rows [r0,r1) and cols [c0,c1).
func (m *Matrix) Slice(r0, r1, c0, c1 int) *Matrix {
	if r0 < 0 || r1 > m.Rows || c0 < 0 || c1 > m.Cols || r0 > r1 || c0 > c1 {
		panic("mat: Slice out of range")
	}
	out := NewMatrix(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.Row(i-r0), m.Data[i*m.Cols+c0:i*m.Cols+c1])
	}
	return out
}

// SetSlice copies src into m starting at (r0, c0).
func (m *Matrix) SetSlice(r0, c0 int, src *Matrix) {
	if r0+src.Rows > m.Rows || c0+src.Cols > m.Cols || r0 < 0 || c0 < 0 {
		panic("mat: SetSlice out of range")
	}
	for i := 0; i < src.Rows; i++ {
		copy(m.Data[(r0+i)*m.Cols+c0:(r0+i)*m.Cols+c0+src.Cols], src.Row(i))
	}
}

// Equalish reports whether m and b agree entry-wise within tol.
func (m *Matrix) Equalish(b *Matrix, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// Kron returns the Kronecker product m ⊗ b.
func (m *Matrix) Kron(b *Matrix) *Matrix {
	out := NewMatrix(m.Rows*b.Rows, m.Cols*b.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			a := m.At(i, j)
			if a == 0 {
				continue
			}
			for p := 0; p < b.Rows; p++ {
				for q := 0; q < b.Cols; q++ {
					out.Set(i*b.Rows+p, j*b.Cols+q, a*b.At(p, q))
				}
			}
		}
	}
	return out
}

// String formats the matrix for debugging.
func (m *Matrix) String() string {
	s := fmt.Sprintf("Matrix %d×%d\n", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf("% .6e ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

func checkSameShape(a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: shape mismatch %d×%d vs %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// Dot returns the Euclidean inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mat: Dot length mismatch")
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	// Scaled to avoid overflow for very large entries.
	mx := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	if mx == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		t := v / mx
		s += t * t
	}
	return mx * math.Sqrt(s)
}
