package mat

import (
	"fmt"
	"math"
)

// Norm1 returns the 1-norm (maximum absolute column sum) of the matrix.
func (m *Matrix) Norm1() float64 {
	best := 0.0
	for j := 0; j < m.Cols; j++ {
		sum := 0.0
		for i := 0; i < m.Rows; i++ {
			sum += math.Abs(m.At(i, j))
		}
		if sum > best {
			best = sum
		}
	}
	return best
}

// padeTheta are the switching 1-norm thresholds θ_m of Higham's
// scaling-and-squaring method ("The scaling and squaring method for the
// matrix exponential revisited", SIAM J. Matrix Anal. 2005) for the Padé
// orders 3, 5, 7, 9, 13.
var padeTheta = [...]float64{
	1.495585217958292e-2,
	2.539398330063230e-1,
	9.504178996162932e-1,
	2.097847961257068e0,
	5.371920351148152e0,
}

// padeCoeffs returns the Padé numerator coefficients b_0..b_m for order m.
func padeCoeffs(m int) []float64 {
	switch m {
	case 3:
		return []float64{120, 60, 12, 1}
	case 5:
		return []float64{30240, 15120, 3360, 420, 30, 1}
	case 7:
		return []float64{17297280, 8648640, 1995840, 277200, 25200, 1512, 56, 1}
	case 9:
		return []float64{17643225600, 8821612800, 2075673600, 302702400, 30270240,
			2162160, 110880, 3960, 90, 1}
	case 13:
		return []float64{64764752532480000, 32382376266240000, 7771770303897600,
			1187353796428800, 129060195264000, 10559470521600, 670442572800,
			33522128640, 1323241920, 40840800, 960960, 16380, 182, 1}
	}
	panic("mat: unsupported Padé order")
}

// Expm computes the matrix exponential e^A by the scaling-and-squaring
// method with diagonal Padé approximants (orders 3–13 selected from the
// 1-norm of A, order 13 with scaling for large norms). The method is the
// standard LAPACK-grade algorithm; accuracy is near machine precision for
// well-scaled inputs.
func Expm(a *Matrix) (*Matrix, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("mat: Expm needs a square matrix, got %d×%d", a.Rows, a.Cols)
	}
	if n == 0 {
		return NewMatrix(0, 0), nil
	}
	norm := a.Norm1()
	orders := [...]int{3, 5, 7, 9}
	for i, m := range orders {
		if norm <= padeTheta[i] {
			return padeExp(a, m)
		}
	}
	// Order 13 with scaling: A/2^s has 1-norm ≤ θ13.
	s := 0
	if norm > padeTheta[4] {
		s = int(math.Ceil(math.Log2(norm / padeTheta[4])))
	}
	scaled := a.Clone().Scale(math.Ldexp(1, -s))
	e, err := padeExp(scaled, 13)
	if err != nil {
		return nil, err
	}
	for k := 0; k < s; k++ {
		e = e.Mul(e)
	}
	return e, nil
}

// padeExp evaluates the order-m diagonal Padé approximant r_m(A) ≈ e^A,
// solving (V−U)·X = (V+U) where U collects the odd and V the even powers.
func padeExp(a *Matrix, m int) (*Matrix, error) {
	n := a.Rows
	b := padeCoeffs(m)
	a2 := a.Mul(a)
	ident := Identity(n)

	var u, v *Matrix
	if m <= 9 {
		// Powers A², A⁴, … as needed.
		powers := []*Matrix{ident, a2}
		for len(powers) <= m/2 {
			powers = append(powers, powers[len(powers)-1].Mul(a2))
		}
		u = NewMatrix(n, n)
		v = NewMatrix(n, n)
		for k := 0; k <= m/2; k++ {
			u = u.Add(powers[k].Clone().Scale(b[2*k+1]))
			v = v.Add(powers[k].Clone().Scale(b[2*k]))
		}
		u = a.Mul(u)
	} else {
		// Order 13 Horner-style grouping (Higham 2005, eq. 10.33).
		a4 := a2.Mul(a2)
		a6 := a2.Mul(a4)
		w1 := a6.Clone().Scale(b[13]).Add(a4.Clone().Scale(b[11])).Add(a2.Clone().Scale(b[9]))
		w2 := a6.Clone().Scale(b[7]).Add(a4.Clone().Scale(b[5])).Add(a2.Clone().Scale(b[3])).Add(ident.Clone().Scale(b[1]))
		u = a.Mul(a6.Mul(w1).Add(w2))
		z1 := a6.Clone().Scale(b[12]).Add(a4.Clone().Scale(b[10])).Add(a2.Clone().Scale(b[8]))
		z2 := a6.Clone().Scale(b[6]).Add(a4.Clone().Scale(b[4])).Add(a2.Clone().Scale(b[2])).Add(ident.Clone().Scale(b[0]))
		v = a6.Mul(z1).Add(z2)
	}

	den := v.Sub(u) // V − U
	num := v.Add(u) // V + U
	lu, err := LUFactor(den)
	if err != nil {
		return nil, fmt.Errorf("mat: Expm Padé denominator singular: %w", err)
	}
	return lu.Solve(num), nil
}
