package mat

import (
	"math"
)

// QR holds a Householder QR factorization of an m×n matrix with m ≥ n:
// A = Q·R with Q m×m orthogonal (stored implicitly as Householder vectors)
// and R m×n upper trapezoidal.
type QR struct {
	qr   *Matrix   // Householder vectors below diagonal, R on/above
	beta []float64 // Householder scalar per reflector
}

// QRFactor computes the QR factorization of a (m ≥ n required for the
// least-squares solver; the factorization itself works for any shape with
// min(m,n) reflectors). The input is not modified.
func QRFactor(a *Matrix) *QR {
	m, n := a.Rows, a.Cols
	qr := a.Clone()
	k := m
	if n < k {
		k = n
	}
	beta := make([]float64, k)
	v := make([]float64, m)
	data := qr.Data
	for j := 0; j < k; j++ {
		// Build Householder vector for column j, rows j..m-1. The scan
		// works on the flat backing array with a strided index: the QR of
		// the per-response Vector Fitting blocks is the hottest loop in
		// the library, so the column norm uses a scaled two-pass sum
		// instead of per-element math.Hypot.
		amax := 0.0
		for i := j; i < m; i++ {
			if a := math.Abs(data[i*n+j]); a > amax {
				amax = a
			}
		}
		if amax == 0 {
			beta[j] = 0
			continue
		}
		sumSq := 0.0
		for i := j; i < m; i++ {
			t := data[i*n+j] / amax
			sumSq += t * t
		}
		norm := amax * math.Sqrt(sumSq)
		x0 := data[j*n+j]
		alpha := norm
		if x0 > 0 {
			alpha = -norm
		}
		// v = x − alpha·e1, normalized so v[0] = 1.
		v0 := x0 - alpha
		v[j] = 1
		for i := j + 1; i < m; i++ {
			v[i] = data[i*n+j] / v0
		}
		bj := -v0 / alpha
		beta[j] = bj
		// Apply H = I − beta·v·vᵀ to the trailing columns: one pass per
		// row instead of per column to stay cache-friendly on the
		// row-major layout. s[c] accumulates vᵀ·A[:, c].
		s := make([]float64, n-j)
		row := data[j*n : j*n+n]
		copy(s, row[j:])
		for i := j + 1; i < m; i++ {
			ri := data[i*n : i*n+n]
			vi := v[i]
			for c := j; c < n; c++ {
				s[c-j] += vi * ri[c]
			}
		}
		for c := j; c < n; c++ {
			s[c-j] *= bj
		}
		for c := j; c < n; c++ {
			row[c] -= s[c-j]
		}
		for i := j + 1; i < m; i++ {
			ri := data[i*n : i*n+n]
			vi := v[i]
			for c := j; c < n; c++ {
				ri[c] -= s[c-j] * vi
			}
		}
		// Store the (normalized) Householder vector below the diagonal,
		// and the R value alpha on the diagonal.
		row[j] = alpha
		for i := j + 1; i < m; i++ {
			data[i*n+j] = v[i]
		}
	}
	return &QR{qr: qr, beta: beta}
}

// R returns the upper-triangular factor as a square n×n matrix (top block).
func (f *QR) R() *Matrix {
	n := f.qr.Cols
	r := NewMatrix(n, n)
	limit := f.qr.Rows
	if n < limit {
		limit = n
	}
	for i := 0; i < limit; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, f.qr.At(i, j))
		}
	}
	return r
}

// ApplyQT overwrites b (length m) with Qᵀ·b.
func (f *QR) ApplyQT(b []float64) {
	m := f.qr.Rows
	if len(b) != m {
		panic("mat: ApplyQT length mismatch")
	}
	for j := 0; j < len(f.beta); j++ {
		if f.beta[j] == 0 {
			continue
		}
		s := b[j]
		for i := j + 1; i < m; i++ {
			s += f.qr.At(i, j) * b[i]
		}
		s *= f.beta[j]
		b[j] -= s
		for i := j + 1; i < m; i++ {
			b[i] -= s * f.qr.At(i, j)
		}
	}
}

// SolveVec solves the least-squares problem min‖A·x − b‖₂ for tall A.
func (f *QR) SolveVec(b []float64) ([]float64, error) {
	m, n := f.qr.Rows, f.qr.Cols
	if m < n {
		panic("mat: QR SolveVec requires m ≥ n")
	}
	if len(b) != m {
		panic("mat: QR SolveVec length mismatch")
	}
	w := make([]float64, m)
	copy(w, b)
	f.ApplyQT(w)
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := w[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		d := f.qr.At(i, i)
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// LeastSquares solves min‖A·x − b‖₂ via Householder QR.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	return QRFactor(a).SolveVec(b)
}

// QRCompressR computes the QR factorization of a and returns only the
// trailing diagonal block R[c0:, c0:] of the triangular factor, an
// (n−c0)×(n−c0) matrix. This is the compression step used by fast vector
// fitting: for a block matrix [A₁ A₂], the R₂₂ block captures the projection
// of A₂ onto the orthogonal complement of range(A₁).
func QRCompressR(a *Matrix, c0 int) *Matrix {
	f := QRFactor(a)
	n := a.Cols
	if c0 < 0 || c0 > n {
		panic("mat: QRCompressR split out of range")
	}
	size := n - c0
	out := NewMatrix(size, size)
	limit := f.qr.Rows
	for i := c0; i < n && i < limit; i++ {
		for j := i; j < n; j++ {
			out.Set(i-c0, j-c0, f.qr.At(i, j))
		}
	}
	return out
}
