package mat

import (
	"errors"
	"math"
)

// ErrNotPD is returned when a Cholesky factorization is attempted on a
// matrix that is not (numerically) positive definite.
var ErrNotPD = errors.New("mat: matrix is not positive definite")

// Cholesky holds a lower-triangular Cholesky factor: A = L·Lᵀ.
type Cholesky struct {
	l *Matrix
}

// CholFactor computes the Cholesky factorization of the symmetric positive
// definite matrix a. Only the lower triangle of a is referenced.
func CholFactor(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		panic("mat: CholFactor of non-square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPD
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return &Cholesky{l: l}, nil
}

// CholFactorRegularized attempts a Cholesky factorization, adding an
// increasing diagonal shift (starting at eps·trace/n) until the matrix
// becomes positive definite. It returns the factor and the shift used.
// This is used for nearly-singular Gramians and dual QP matrices.
func CholFactorRegularized(a *Matrix) (*Cholesky, float64, error) {
	n := a.Rows
	if n == 0 {
		return &Cholesky{l: NewMatrix(0, 0)}, 0, nil
	}
	if c, err := CholFactor(a); err == nil {
		return c, 0, nil
	}
	scale := a.Trace() / float64(n)
	if scale <= 0 {
		scale = a.MaxAbs()
	}
	if scale == 0 {
		scale = 1
	}
	shift := 1e-14 * scale
	work := a.Clone()
	for iter := 0; iter < 40; iter++ {
		for i := 0; i < n; i++ {
			work.Set(i, i, a.At(i, i)+shift)
		}
		if c, err := CholFactor(work); err == nil {
			return c, shift, nil
		}
		shift *= 10
	}
	return nil, shift, ErrNotPD
}

// L returns the lower-triangular factor.
func (c *Cholesky) L() *Matrix { return c.l }

// SolveVec solves A·x = b using the factorization.
func (c *Cholesky) SolveVec(b []float64) []float64 {
	return c.SolveVecInto(make([]float64, c.l.Rows), b)
}

// SolveVecInto solves A·x = b into the caller-owned dst (allocation-free).
// dst may alias b; it must have length n.
func (c *Cholesky) SolveVecInto(dst, b []float64) []float64 {
	n := c.l.Rows
	if len(b) != n || len(dst) != n {
		panic("mat: Cholesky SolveVecInto length mismatch")
	}
	// L·y = b (y stored in dst; dst[j] for j < i is already y_j, so b and
	// dst may share storage).
	for i := 0; i < n; i++ {
		s := b[i]
		row := c.l.Row(i)
		for j := 0; j < i; j++ {
			s -= row[j] * dst[j]
		}
		dst[i] = s / row[i]
	}
	// Lᵀ·x = y
	for i := n - 1; i >= 0; i-- {
		s := dst[i]
		for j := i + 1; j < n; j++ {
			s -= c.l.At(j, i) * dst[j]
		}
		dst[i] = s / c.l.At(i, i)
	}
	return dst
}

// Solve solves A·X = B.
func (c *Cholesky) Solve(b *Matrix) *Matrix {
	n := c.l.Rows
	if b.Rows != n {
		panic("mat: Cholesky Solve shape mismatch")
	}
	x := NewMatrix(n, b.Cols)
	col := make([]float64, n)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.At(i, j)
		}
		sol := c.SolveVec(col)
		for i := 0; i < n; i++ {
			x.Set(i, j, sol[i])
		}
	}
	return x
}
