package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCSVDReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for _, dims := range [][2]int{{5, 5}, {8, 4}, {4, 8}, {1, 1}, {6, 2}} {
		a := randCMatrix(rng, dims[0], dims[1])
		s := CSVDecompose(a)
		// Rebuild A = U·diag(S)·Vᴴ.
		k := len(s.S)
		d := NewCMatrix(k, k)
		for i, v := range s.S {
			d.Set(i, i, complex(v, 0))
		}
		rec := s.U.Mul(d).Mul(s.V.H())
		if !rec.Equalish(a, 1e-10*(1+a.FrobNorm())) {
			t.Fatalf("dims %v: reconstruction failed", dims)
		}
		// Descending order.
		for i := 1; i < k; i++ {
			if s.S[i] > s.S[i-1]+1e-14 {
				t.Fatalf("singular values not sorted: %v", s.S)
			}
		}
		// Orthonormal columns.
		utu := s.U.H().Mul(s.U)
		if !utu.Equalish(CIdentity(k), 1e-10) {
			t.Fatalf("UᴴU != I")
		}
		vtv := s.V.H().Mul(s.V)
		if !vtv.Equalish(CIdentity(k), 1e-10) {
			t.Fatalf("VᴴV != I")
		}
	}
}

func TestCSVDKnownValues(t *testing.T) {
	// diag(3, 2i): singular values 3 and 2.
	a := NewCMatrixFrom([][]complex128{{3, 0}, {0, 2i}})
	s := SingularValues(a)
	if math.Abs(s[0]-3) > 1e-12 || math.Abs(s[1]-2) > 1e-12 {
		t.Fatalf("singular values %v want [3 2]", s)
	}
	// Unitary matrix: all singular values 1.
	u := NewCMatrixFrom([][]complex128{
		{complex(1/math.Sqrt2, 0), complex(0, 1/math.Sqrt2)},
		{complex(0, 1/math.Sqrt2), complex(1/math.Sqrt2, 0)},
	})
	s = SingularValues(u)
	for _, v := range s {
		if math.Abs(v-1) > 1e-12 {
			t.Fatalf("unitary singular values %v", s)
		}
	}
}

func TestCSVDRankDeficient(t *testing.T) {
	// Rank-1 outer product: exactly one nonzero singular value = ‖x‖·‖y‖.
	x := []complex128{1, 2i, -1}
	y := []complex128{2, 1 + 1i}
	a := NewCMatrix(3, 2)
	for i := range x {
		for j := range y {
			a.Set(i, j, x[i]*y[j])
		}
	}
	s := SingularValues(a)
	want := CNorm2(x) * CNorm2(y)
	if math.Abs(s[0]-want) > 1e-10 {
		t.Fatalf("rank-1 sigma %v want %v", s[0], want)
	}
	if s[1] > 1e-10 {
		t.Fatalf("second singular value should vanish: %v", s)
	}
}

func TestMaxSingularValuePowerAgreesWithJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(12)
		a := randCMatrix(rng, n, n)
		exact := MaxSingularValue(a)
		est, _ := MaxSingularValuePower(a, nil, 1e-12, 500)
		if math.Abs(est-exact) > 1e-6*(1+exact) {
			t.Fatalf("power iteration %v vs jacobi %v (n=%d)", est, exact, n)
		}
	}
}

func TestMaxSingularValuePowerWarmStart(t *testing.T) {
	// A slowly-varying family: warm starting from the previous vector must
	// still converge to the right value.
	rng := rand.New(rand.NewSource(32))
	a := randCMatrix(rng, 10, 10)
	var v []complex128
	for k := 0; k < 5; k++ {
		b := a.Clone()
		for i := range b.Data {
			b.Data[i] *= complex(1+0.01*float64(k), 0)
		}
		exact := MaxSingularValue(b)
		var est float64
		est, v = MaxSingularValuePower(b, v, 1e-12, 500)
		if math.Abs(est-exact) > 1e-6*(1+exact) {
			t.Fatalf("step %d: %v vs %v", k, est, exact)
		}
	}
}

func TestRealSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := randMatrix(rng, 7, 4)
	s := SVDecompose(a)
	d := NewMatrix(4, 4)
	for i, v := range s.S {
		d.Set(i, i, v)
	}
	rec := s.U.Mul(d).Mul(s.V.T())
	if !rec.Equalish(a, 1e-10*(1+a.FrobNorm())) {
		t.Fatalf("real SVD reconstruction failed")
	}
}

func TestSVDPropertySpectralNormBound(t *testing.T) {
	// ‖A·x‖ ≤ σ_max·‖x‖ for all x.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randCMatrix(rng, n, n)
		smax := MaxSingularValue(a)
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		ax := a.MulVec(x)
		return CNorm2(ax) <= smax*CNorm2(x)*(1+1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSVDFrobeniusIdentity(t *testing.T) {
	// Σσᵢ² == ‖A‖F².
	rng := rand.New(rand.NewSource(34))
	a := randCMatrix(rng, 6, 6)
	s := SingularValues(a)
	sum := 0.0
	for _, v := range s {
		sum += v * v
	}
	f2 := a.FrobNorm() * a.FrobNorm()
	if math.Abs(sum-f2) > 1e-10*f2 {
		t.Fatalf("Σσ² = %v vs ‖A‖F² = %v", sum, f2)
	}
}

func BenchmarkCSVD45(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	a := randCMatrix(rng, 45, 45)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CSVDecompose(a)
	}
}

func BenchmarkMaxSingularValuePower45(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	a := randCMatrix(rng, 45, 45)
	b.ResetTimer()
	var v []complex128
	for i := 0; i < b.N; i++ {
		_, v = MaxSingularValuePower(a, v, 1e-9, 200)
	}
}
