package mat

import (
	"fmt"
	"math"
	"math/cmplx"
)

// This file implements the structured diagonal-plus-low-rank kernel behind
// the large-N certification path: a factored representation of
//
//	zI − M,   M = Λ + U·Vᵀ,
//
// where Λ is real (block-)diagonal — 1×1 blocks and 2×2 rotation-like
// blocks [[d₁, e], [−e, d₂]] — and U, V are real N×p with p ≪ N. The
// level-γ Hamiltonian of a pole-residue macromodel has exactly this shape
// (Λ = blkdiag(A, −Aᵀ) in the poles, p = 2·ports), so the two dense O(N³)
// kernels of the contour counter and the shift-and-invert probe collapse:
//
//	det(zI − M) = det(zI − Λ) · det(I − Vᵀ(zI−Λ)⁻¹U)      (determinant lemma)
//	(zI − M)⁻¹b = y + X·C⁻¹·Vᵀy                            (Woodbury)
//
// with y = (zI−Λ)⁻¹b, X = (zI−Λ)⁻¹U and C = I − VᵀX the p×p capacitance
// matrix. One determinant evaluation costs an O(N·p²) sweep plus a p×p
// complex LU; one solve against a cached factorization costs O(N·p + p²).
// Memory is O(N·p) — the dense matrix is never materialized.

// DetBackend is the determinant kernel a ContourEvaluator walks contours
// with: the principal argument of det(zI − M) plus a spectrum-proximity
// alarm (an upper bound on σ_min(zI − M)) per node, and a rigorous
// eigenvalue magnitude bound for sizing rectangles. DenseShifted is the
// O(N³) oracle implementation; StructuredShifted the O(N·p²) fast path.
type DetBackend interface {
	// Dim returns the matrix dimension N.
	Dim() int
	// EigenBound returns a rigorous bound B with |λ| ≤ B for every
	// eigenvalue of M.
	EigenBound() float64
	// DetPhasePivot returns the principal argument of det(zI − M) in
	// (−π, π] and an upper bound on σ_min(zI − M) (the quadrature's
	// aliasing alarm). ErrSingular reports that z is (numerically) an
	// eigenvalue.
	DetPhasePivot(z complex128) (float64, float64, error)
}

// StructuredShifted is the factored diagonal-plus-low-rank representation
// zI − (Λ + U·Vᵀ). The block-diagonal Λ is encoded by two parallel slices:
// diag holds the diagonal, and a nonzero skew[k] = e declares the 2×2
// block [[diag[k], e], [−e, diag[k+1]]] on rows k, k+1 (skew[k+1] must
// then be zero; real-pole rows keep skew[k] = 0). U and V are N×p.
//
// The factorization at one shift z (X, the capacitance LU, and the
// determinant's phase/log-magnitude) is cached and reused while z is
// unchanged, so DetPhasePivot followed by SolveInto at the same node pays
// the O(N·p²) sweep once. Not safe for concurrent use.
type StructuredShifted struct {
	diag, skew []float64
	u, v       *Matrix

	// Factorization cache at shift z (valid flags it).
	z      complex128
	valid  bool
	x      []complex128 // N×p row-major: X = (zI−Λ)⁻¹U
	capm   []complex128 // p×p row-major: LU factors of C = I − VᵀX
	capPiv []int        // capacitance LU row pivots
	phase  float64      // principal argument of det(zI − M)
	logAbs float64      // log|det(zI − M)|

	w []complex128 // p-vector solve scratch
	y []complex128 // N×p row-major scratch: Y = (zI−Λ)⁻¹X for the trace alarm
}

// NewStructuredShifted builds the factored representation from the block
// encoding (see StructuredShifted) and the low-rank factors. The slices
// and matrices are retained, not copied. It panics on shape or block-
// encoding violations.
func NewStructuredShifted(diag, skew []float64, u, v *Matrix) *StructuredShifted {
	n := len(diag)
	if len(skew) != n {
		panic("mat: NewStructuredShifted diag/skew length mismatch")
	}
	if u.Rows != n || v.Rows != n || u.Cols != v.Cols {
		panic(fmt.Sprintf("mat: NewStructuredShifted factor shapes U %dx%d, V %dx%d vs N=%d",
			u.Rows, u.Cols, v.Rows, v.Cols, n))
	}
	for k := 0; k < n; {
		if skew[k] == 0 {
			k++
			continue
		}
		if k+1 >= n || skew[k+1] != 0 {
			panic("mat: NewStructuredShifted invalid 2x2 block encoding")
		}
		k += 2
	}
	p := u.Cols
	return &StructuredShifted{
		diag:   diag,
		skew:   skew,
		u:      u,
		v:      v,
		x:      make([]complex128, n*p),
		capm:   make([]complex128, p*p),
		capPiv: make([]int, p),
		w:      make([]complex128, p),
		y:      make([]complex128, n*p),
	}
}

// Dim returns the matrix dimension N.
func (s *StructuredShifted) Dim() int { return len(s.diag) }

// Rank returns the number of low-rank columns p.
func (s *StructuredShifted) Rank() int { return s.u.Cols }

// EigenBound returns min over the ∞- and 1-norm triangle-inequality bounds
// ‖Λ‖ + ‖U·Vᵀ‖: every eigenvalue of M satisfies |λ| ≤ ‖M‖ for any induced
// norm, |（UVᵀ)|'s row i absolute sum is at most Σ_k |U(i,k)|·‖V(:,k)‖₁,
// and symmetrically for columns. O(N·p), no materialization.
func (s *StructuredShifted) EigenBound() float64 {
	n, p := len(s.diag), s.u.Cols
	colU := make([]float64, p) // ‖U(:,k)‖₁
	colV := make([]float64, p) // ‖V(:,k)‖₁
	for k := 0; k < n; k++ {
		ur, vr := s.u.Row(k), s.v.Row(k)
		for j := 0; j < p; j++ {
			colU[j] += math.Abs(ur[j])
			colV[j] += math.Abs(vr[j])
		}
	}
	lamAbs := func(k int) float64 { // abs row sum of Λ's row k == col sum (blocks are [[d1,e],[−e,d2]])
		a := math.Abs(s.diag[k])
		if s.skew[k] != 0 {
			a += math.Abs(s.skew[k])
		} else if k > 0 && s.skew[k-1] != 0 {
			a += math.Abs(s.skew[k-1])
		}
		return a
	}
	inf, one := 0.0, 0.0
	for i := 0; i < n; i++ {
		ur, vr := s.u.Row(i), s.v.Row(i)
		ri, ci := lamAbs(i), lamAbs(i)
		for k := 0; k < p; k++ {
			ri += math.Abs(ur[k]) * colV[k]
			ci += math.Abs(vr[k]) * colU[k]
		}
		if ri > inf {
			inf = ri
		}
		if ci > one {
			one = ci
		}
	}
	return math.Min(inf, one)
}

// factor computes (and caches) the shift-z factorization: X = (zI−Λ)⁻¹U,
// the LU of the capacitance C = I − VᵀX, and the accumulated phase and
// log-magnitude of det(zI − M) = det(zI − Λ)·det(C).
func (s *StructuredShifted) factor(z complex128) error {
	if s.valid && z == s.z {
		return nil
	}
	s.valid = false
	n, p := len(s.diag), s.u.Cols
	phase, logAbs := 0.0, 0.0
	for k := 0; k < n; {
		if s.skew[k] == 0 {
			f := z - complex(s.diag[k], 0)
			if f == 0 {
				return ErrSingular
			}
			phase += cmplx.Phase(f)
			logAbs += math.Log(cmplx.Abs(f))
			ur := s.u.Row(k)
			xr := s.x[k*p : (k+1)*p]
			for j := 0; j < p; j++ {
				xr[j] = complex(ur[j], 0) / f
			}
			k++
			continue
		}
		// 2×2 block: zI − [[d1,e],[−e,d2]] = [[z−d1, −e],[e, z−d2]],
		// det = (z−d1)(z−d2) + e², closed-form inverse.
		z1 := z - complex(s.diag[k], 0)
		z2 := z - complex(s.diag[k+1], 0)
		e := complex(s.skew[k], 0)
		det := z1*z2 + e*e
		if det == 0 {
			return ErrSingular
		}
		phase += cmplx.Phase(det)
		logAbs += math.Log(cmplx.Abs(det))
		u1, u2 := s.u.Row(k), s.u.Row(k+1)
		x1 := s.x[k*p : (k+1)*p]
		x2 := s.x[(k+1)*p : (k+2)*p]
		for j := 0; j < p; j++ {
			b1, b2 := complex(u1[j], 0), complex(u2[j], 0)
			x1[j] = (z2*b1 + e*b2) / det
			x2[j] = (z1*b2 - e*b1) / det
		}
		k += 2
	}
	// Capacitance C = I − VᵀX.
	for i := 0; i < p; i++ {
		row := s.capm[i*p : (i+1)*p]
		for j := range row {
			row[j] = 0
		}
		row[i] = 1
	}
	for k := 0; k < n; k++ {
		vr := s.v.Row(k)
		xr := s.x[k*p : (k+1)*p]
		for i := 0; i < p; i++ {
			if vr[i] == 0 {
				continue
			}
			cv := complex(vr[i], 0)
			row := s.capm[i*p : (i+1)*p]
			for j := 0; j < p; j++ {
				row[j] -= cv * xr[j]
			}
		}
	}
	// In-place LU of C with partial pivoting; row swaps flip the sign.
	for c := 0; c < p; c++ {
		pr, mx := c, cmplx.Abs(s.capm[c*p+c])
		for i := c + 1; i < p; i++ {
			if ab := cmplx.Abs(s.capm[i*p+c]); ab > mx {
				mx, pr = ab, i
			}
		}
		if mx == 0 || math.IsNaN(mx) {
			return ErrSingular
		}
		s.capPiv[c] = pr
		if pr != c {
			rc, rp := s.capm[c*p:(c+1)*p], s.capm[pr*p:(pr+1)*p]
			for j := 0; j < p; j++ {
				rc[j], rp[j] = rp[j], rc[j]
			}
			phase += math.Pi
		}
		pivot := s.capm[c*p+c]
		phase += cmplx.Phase(pivot)
		logAbs += math.Log(mx)
		for i := c + 1; i < p; i++ {
			m := s.capm[i*p+c] / pivot
			s.capm[i*p+c] = m
			if m == 0 {
				continue
			}
			ri, rc := s.capm[i*p:(i+1)*p], s.capm[c*p:(c+1)*p]
			for j := c + 1; j < p; j++ {
				ri[j] -= m * rc[j]
			}
		}
	}
	if math.IsInf(logAbs, 0) || math.IsNaN(logAbs) || math.IsNaN(phase) {
		return ErrSingular
	}
	s.z, s.valid = z, true
	s.phase, s.logAbs = wrapPi(phase), logAbs
	return nil
}

// capSolve solves C·w = w in place against the cached capacitance LU.
func (s *StructuredShifted) capSolve(w []complex128) {
	p := s.u.Cols
	for c := 0; c < p; c++ {
		if pr := s.capPiv[c]; pr != c {
			w[c], w[pr] = w[pr], w[c]
		}
		for i := c + 1; i < p; i++ {
			w[i] -= s.capm[i*p+c] * w[c]
		}
	}
	for c := p - 1; c >= 0; c-- {
		for j := c + 1; j < p; j++ {
			w[c] -= s.capm[c*p+j] * w[j]
		}
		w[c] /= s.capm[c*p+c]
	}
}

// diagSolve writes (zI − Λ)⁻¹·b into dst (dst and b may alias).
func (s *StructuredShifted) diagSolve(z complex128, dst, b []complex128) error {
	n := len(s.diag)
	for k := 0; k < n; {
		if s.skew[k] == 0 {
			f := z - complex(s.diag[k], 0)
			if f == 0 {
				return ErrSingular
			}
			dst[k] = b[k] / f
			k++
			continue
		}
		z1 := z - complex(s.diag[k], 0)
		z2 := z - complex(s.diag[k+1], 0)
		e := complex(s.skew[k], 0)
		det := z1*z2 + e*e
		if det == 0 {
			return ErrSingular
		}
		b1, b2 := b[k], b[k+1]
		dst[k] = (z2*b1 + e*b2) / det
		dst[k+1] = (z1*b2 - e*b1) / det
		k += 2
	}
	return nil
}

// LogDetPhase returns the principal argument of det(zI − M) in (−π, π]
// together with log|det(zI − M)| — one O(N·p²) sweep plus a p×p complex LU
// via the determinant lemma. ErrSingular reports that z is (numerically)
// an eigenvalue of M or of Λ.
func (s *StructuredShifted) LogDetPhase(z complex128) (float64, float64, error) {
	if err := s.factor(z); err != nil {
		return 0, 0, err
	}
	return s.phase, s.logAbs, nil
}

// SolveInto writes (zI − M)⁻¹·b into x via Woodbury against the cached
// shift-z factorization (computed on first use per shift): O(N·p + p²)
// when the shift repeats, O(N·p² + p³) on a fresh shift. x and b must have
// length N and may alias.
func (s *StructuredShifted) SolveInto(z complex128, x, b []complex128) error {
	if len(x) != len(s.diag) || len(b) != len(s.diag) {
		panic("mat: StructuredShifted.SolveInto length mismatch")
	}
	if err := s.factor(z); err != nil {
		return err
	}
	if err := s.diagSolve(z, x, b); err != nil {
		return err
	}
	n, p := len(s.diag), s.u.Cols
	for i := 0; i < p; i++ {
		s.w[i] = 0
	}
	for k := 0; k < n; k++ {
		vr := s.v.Row(k)
		yk := x[k]
		for i := 0; i < p; i++ {
			s.w[i] += complex(vr[i], 0) * yk
		}
	}
	s.capSolve(s.w)
	for k := 0; k < n; k++ {
		xr := s.x[k*p : (k+1)*p]
		var acc complex128
		for i := 0; i < p; i++ {
			acc += xr[i] * s.w[i]
		}
		x[k] += acc
	}
	return nil
}

// DetPhasePivot implements DetBackend: the determinant phase from
// LogDetPhase plus the proximity alarm N/|tr((zI−M)⁻¹)|. The trace is the
// exact derivative of log det(zI − M), so the alarm makes the quadrature's
// chord guard chord·N ≤ maxStep·piv collapse to the tight first-order
// bound chord·|tr| ≤ maxStep — node demand tracks the actual phase speed
// instead of the worst case N/dist(z, spec), which is what lets contour
// counts stay affordable at large N. It is still a valid σ_min upper bound
// (|tr| ≤ Σᵢ 1/|z−λᵢ| ≤ N/dist(z, spec) and σ_min(zI−M) ≤ |z−λᵢ|). The
// trace reuses the cached factorization via the Woodbury identity
// tr((zI−M)⁻¹) = tr(R) + tr(C⁻¹·Vᵀ·R·X) with R = (zI−Λ)⁻¹ — one extra
// O(N·p²) sweep per node.
func (s *StructuredShifted) DetPhasePivot(z complex128) (float64, float64, error) {
	if err := s.factor(z); err != nil {
		return 0, 0, err
	}
	n, p := len(s.diag), s.u.Cols
	var tr complex128
	// tr(R) and Y = R·X, block by block (same closed forms as diagSolve).
	for k := 0; k < n; {
		if s.skew[k] == 0 {
			f := z - complex(s.diag[k], 0)
			tr += 1 / f
			xr, yr := s.x[k*p:(k+1)*p], s.y[k*p:(k+1)*p]
			for j := 0; j < p; j++ {
				yr[j] = xr[j] / f
			}
			k++
			continue
		}
		z1 := z - complex(s.diag[k], 0)
		z2 := z - complex(s.diag[k+1], 0)
		e := complex(s.skew[k], 0)
		det := z1*z2 + e*e
		tr += (z1 + z2) / det
		x1, x2 := s.x[k*p:(k+1)*p], s.x[(k+1)*p:(k+2)*p]
		y1, y2 := s.y[k*p:(k+1)*p], s.y[(k+1)*p:(k+2)*p]
		for j := 0; j < p; j++ {
			y1[j] = (z2*x1[j] + e*x2[j]) / det
			y2[j] = (z1*x2[j] - e*x1[j]) / det
		}
		k += 2
	}
	// tr(C⁻¹·G) with G = Vᵀ·Y, one capacitance solve per column.
	for b := 0; b < p; b++ {
		for i := 0; i < p; i++ {
			s.w[i] = 0
		}
		for k := 0; k < n; k++ {
			vr := s.v.Row(k)
			yb := s.y[k*p+b]
			if yb == 0 {
				continue
			}
			for i := 0; i < p; i++ {
				s.w[i] += complex(vr[i], 0) * yb
			}
		}
		s.capSolve(s.w)
		tr += s.w[b]
	}
	trAbs := cmplx.Abs(tr)
	if math.IsNaN(trAbs) || math.IsInf(trAbs, 0) {
		return 0, 0, ErrSingular
	}
	if trAbs == 0 {
		// Exact residue cancellation: no proximity information. Fall back to
		// a neutral alarm so the |Δφ| ≤ maxStep check still governs.
		return s.phase, s.EigenBound(), nil
	}
	return s.phase, float64(n) / trAbs, nil
}

// applyBlockDiag writes Λ·src (or Λᵀ·src with transpose) into dst.
func (s *StructuredShifted) applyBlockDiag(dst, src *Matrix, transpose bool) {
	n, p := len(s.diag), src.Cols
	for k := 0; k < n; {
		if s.skew[k] == 0 {
			d := s.diag[k]
			sr, dr := src.Row(k), dst.Row(k)
			for j := 0; j < p; j++ {
				dr[j] = d * sr[j]
			}
			k++
			continue
		}
		d1, d2, e := s.diag[k], s.diag[k+1], s.skew[k]
		if transpose {
			e = -e
		}
		s1, s2 := src.Row(k), src.Row(k+1)
		r1, r2 := dst.Row(k), dst.Row(k+1)
		for j := 0; j < p; j++ {
			r1[j] = d1*s1[j] + e*s2[j]
			r2[j] = -e*s1[j] + d2*s2[j]
		}
		k += 2
	}
}

// Square returns the factored representation of M² = Λ² + U₂·V₂ᵀ, still
// diagonal-plus-low-rank with doubled rank: Λ² keeps the block-diagonal
// form, U₂ = [Λ·U | U] and V₂ = [V | Λᵀ·V + V·(UᵀV)]. This is what the
// shift-and-invert probe runs on: a real shift −ω² of M² in place of the
// complex shift jω of M.
func (s *StructuredShifted) Square() *StructuredShifted {
	n, p := len(s.diag), s.u.Cols
	diag2 := make([]float64, n)
	skew2 := make([]float64, n)
	for k := 0; k < n; {
		if s.skew[k] == 0 {
			d := s.diag[k]
			diag2[k] = d * d
			k++
			continue
		}
		d1, d2, e := s.diag[k], s.diag[k+1], s.skew[k]
		diag2[k] = d1*d1 - e*e
		diag2[k+1] = d2*d2 - e*e
		skew2[k] = e * (d1 + d2)
		k += 2
	}
	lu := NewMatrix(n, p)
	s.applyBlockDiag(lu, s.u, false)
	ltv := NewMatrix(n, p)
	s.applyBlockDiag(ltv, s.v, true)
	utv := NewMatrix(p, p) // UᵀV
	for k := 0; k < n; k++ {
		ur, vr := s.u.Row(k), s.v.Row(k)
		for i := 0; i < p; i++ {
			if ur[i] == 0 {
				continue
			}
			row := utv.Row(i)
			for j := 0; j < p; j++ {
				row[j] += ur[i] * vr[j]
			}
		}
	}
	vutv := s.v.Mul(utv) // V·(UᵀV)
	u2 := NewMatrix(n, 2*p)
	v2 := NewMatrix(n, 2*p)
	for k := 0; k < n; k++ {
		copy(u2.Row(k)[:p], lu.Row(k))
		copy(u2.Row(k)[p:], s.u.Row(k))
		copy(v2.Row(k)[:p], s.v.Row(k))
		vo := v2.Row(k)[p:]
		lr, wr := ltv.Row(k), vutv.Row(k)
		for j := 0; j < p; j++ {
			vo[j] = lr[j] + wr[j]
		}
	}
	return NewStructuredShifted(diag2, skew2, u2, v2)
}

// Materialize assembles the dense N×N matrix M = Λ + U·Vᵀ. It exists for
// oracle cross-validation (tests, fuzzing) and costs the O(N²·p) work and
// O(N²) memory the factored representation avoids.
func (s *StructuredShifted) Materialize() *Matrix {
	n, p := len(s.diag), s.u.Cols
	m := NewMatrix(n, n)
	for k := 0; k < n; {
		if s.skew[k] == 0 {
			m.Set(k, k, s.diag[k])
			k++
			continue
		}
		m.Set(k, k, s.diag[k])
		m.Set(k, k+1, s.skew[k])
		m.Set(k+1, k, -s.skew[k])
		m.Set(k+1, k+1, s.diag[k+1])
		k += 2
	}
	for i := 0; i < n; i++ {
		ur := s.u.Row(i)
		mr := m.Row(i)
		for k := 0; k < p; k++ {
			if ur[k] == 0 {
				continue
			}
			uk := ur[k]
			for j := 0; j < n; j++ {
				mr[j] += uk * s.v.At(j, k)
			}
		}
	}
	return m
}

// RealShiftSolver holds the one-time factorization of σI − M at a real
// shift σ for repeated real-arithmetic Woodbury solves — the structured
// replacement for the dense LU behind the shift-and-invert Arnoldi probe.
// Each SolveVec costs O(N·p + p²).
type RealShiftSolver struct {
	s   *StructuredShifted
	sig float64
	x   *Matrix // (σI−Λ)⁻¹U
	cap *LU
	w   []float64
}

// RealShiftSolver factors σI − M for the real shift σ. ErrSingular (or a
// singular capacitance) reports that σ is numerically an eigenvalue of Λ
// or M.
func (s *StructuredShifted) RealShiftSolver(sigma float64) (*RealShiftSolver, error) {
	n, p := len(s.diag), s.u.Cols
	x := NewMatrix(n, p)
	if err := s.realDiagSolveMat(sigma, x, s.u); err != nil {
		return nil, err
	}
	capm := NewMatrix(p, p)
	for i := 0; i < p; i++ {
		capm.Set(i, i, 1)
	}
	for k := 0; k < n; k++ {
		vr, xr := s.v.Row(k), x.Row(k)
		for i := 0; i < p; i++ {
			if vr[i] == 0 {
				continue
			}
			row := capm.Row(i)
			for j := 0; j < p; j++ {
				row[j] -= vr[i] * xr[j]
			}
		}
	}
	lu, err := LUFactor(capm)
	if err != nil {
		return nil, err
	}
	return &RealShiftSolver{s: s, sig: sigma, x: x, cap: lu, w: make([]float64, p)}, nil
}

// realDiagSolveMat writes (σI − Λ)⁻¹·src into dst column-block-wise.
func (s *StructuredShifted) realDiagSolveMat(sigma float64, dst, src *Matrix) error {
	n, p := len(s.diag), src.Cols
	for k := 0; k < n; {
		if s.skew[k] == 0 {
			f := sigma - s.diag[k]
			if f == 0 {
				return ErrSingular
			}
			sr, dr := src.Row(k), dst.Row(k)
			for j := 0; j < p; j++ {
				dr[j] = sr[j] / f
			}
			k++
			continue
		}
		z1, z2, e := sigma-s.diag[k], sigma-s.diag[k+1], s.skew[k]
		det := z1*z2 + e*e
		if det == 0 {
			return ErrSingular
		}
		s1, s2 := src.Row(k), src.Row(k+1)
		r1, r2 := dst.Row(k), dst.Row(k+1)
		for j := 0; j < p; j++ {
			r1[j] = (z2*s1[j] + e*s2[j]) / det
			r2[j] = (z1*s2[j] - e*s1[j]) / det
		}
		k += 2
	}
	return nil
}

// SolveVec returns (σI − M)⁻¹·b (a fresh slice; b is not modified).
func (f *RealShiftSolver) SolveVec(b []float64) []float64 {
	s := f.s
	n, p := len(s.diag), s.u.Cols
	y := make([]float64, n)
	// y = (σI−Λ)⁻¹b, per block.
	for k := 0; k < n; {
		if s.skew[k] == 0 {
			y[k] = b[k] / (f.sig - s.diag[k])
			k++
			continue
		}
		z1, z2, e := f.sig-s.diag[k], f.sig-s.diag[k+1], s.skew[k]
		det := z1*z2 + e*e
		y[k] = (z2*b[k] + e*b[k+1]) / det
		y[k+1] = (z1*b[k+1] - e*b[k]) / det
		k += 2
	}
	for i := 0; i < p; i++ {
		f.w[i] = 0
	}
	for k := 0; k < n; k++ {
		vr := s.v.Row(k)
		for i := 0; i < p; i++ {
			f.w[i] += vr[i] * y[k]
		}
	}
	w := f.cap.SolveVec(f.w)
	for k := 0; k < n; k++ {
		xr := f.x.Row(k)
		acc := 0.0
		for i := 0; i < p; i++ {
			acc += xr[i] * w[i]
		}
		y[k] += acc
	}
	return y
}
