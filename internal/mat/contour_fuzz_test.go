package mat

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzCountRect drives the contour counter with arbitrary random matrices
// and rectangle geometries and checks the two properties the certifier
// relies on: the count matches the dense eigenvalue oracle, and it is
// integer-stable under contour refinement (quadrupling the initial node
// budget must not change the answer).
func FuzzCountRect(f *testing.F) {
	f.Add(int64(42), int64(6), 0.9, 0.8, 0.7, 0.95)
	f.Add(int64(7), int64(4), 0.5, 0.5, 0.5, 0.5)
	f.Add(int64(1404), int64(8), 0.99, 0.2, 0.35, 0.6)
	f.Add(int64(-3), int64(5), 0.1, 0.9, 0.85, 0.15)
	f.Fuzz(func(t *testing.T, seed, dim int64, fReLo, fReHi, fImLo, fImHi float64) {
		n := 3 + int(((dim%6)+6)%6) // 3..8
		for _, v := range []float64{fReLo, fReHi, fImLo, fImHi} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip("non-finite rectangle fraction")
			}
		}
		frac := func(v float64) float64 { return math.Abs(v) - math.Floor(math.Abs(v)) }

		rng := rand.New(rand.NewSource(seed))
		m := NewMatrix(n, n)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				m.Set(r, c, 2*(rng.Float64()-0.5))
			}
		}
		eigs, err := EigenValues(m)
		if err != nil {
			t.Skip("dense oracle did not converge")
		}
		ev := NewContourEvaluator(m)
		bound := ev.EigenBound()
		rc := RectContour{
			ReLo: -bound * frac(fReLo), ReHi: bound * frac(fReHi),
			ImLo: -bound * frac(fImLo), ImHi: bound * frac(fImHi),
		}
		if rc.ReHi-rc.ReLo < 1e-3 || rc.ImHi-rc.ImLo < 1e-3 {
			t.Skip("degenerate rectangle")
		}
		if tooClose(eigs, rc, 1e-6*bound) {
			t.Skip("eigenvalue on the contour")
		}
		want := 0
		for _, e := range eigs {
			if real(e) > rc.ReLo && real(e) < rc.ReHi && imag(e) > rc.ImLo && imag(e) < rc.ImHi {
				want++
			}
		}
		got, err := ev.CountRect(rc, ContourOptions{})
		if err != nil {
			// A stall on an adversarial rectangle is a legitimate refusal —
			// production callers perturb the contour and retry — but a wrong
			// count never is.
			t.Skip("counter stalled")
		}
		if got != want {
			t.Fatalf("CountRect(%+v) = %d, dense oracle says %d (eigs %v)", rc, got, want, eigs)
		}
		refined, err := ev.CountRect(rc, ContourOptions{InitNodes: 32})
		if err != nil {
			t.Skip("refined counter stalled")
		}
		if refined != got {
			t.Fatalf("count not integer-stable under refinement: %d nodes→%d, rect %+v", got, refined, rc)
		}

		// Structured leg: a random diagonal-plus-low-rank matrix (larger than
		// the dense leg's, optionally with a rank-deficient correction) must
		// give the same determinant phase as the dense LU at every probe
		// point, and the same rectangle count through both backends.
		n2 := 6 + int(((seed%10)+10)%10)*2 // 6..24
		s := randStructured(rng, n2, 1+int(((dim%3)+3)%3), dim%2 == 0)
		sd := NewDenseShifted(s.Materialize())
		sb := s.EigenBound()
		for i := 0; i < 4; i++ {
			z := complex(sb*(frac(fReLo+float64(i)*0.137)-0.5), sb*(frac(fImHi+float64(i)*0.311)-0.5))
			sp, _, serr := s.DetPhasePivot(z)
			dp, _, derr := sd.DetPhasePivot(z)
			if serr != nil || derr != nil {
				continue // shift (near-)singular for one kernel: no phase to compare
			}
			if d := math.Abs(wrapPi(sp - dp)); d > 1e-6 {
				t.Fatalf("structured phase %g != dense phase %g at z=%v (Δ=%g, n=%d)", sp, dp, z, d, n2)
			}
		}
		seigs, err := EigenValues(s.Materialize())
		if err != nil {
			t.Skip("structured-leg dense oracle did not converge")
		}
		src := RectContour{
			ReLo: -sb * frac(fReHi), ReHi: sb * frac(fReLo),
			ImLo: -sb * frac(fImHi), ImHi: sb * frac(fImLo),
		}
		if src.ReHi-src.ReLo < 1e-3 || src.ImHi-src.ImLo < 1e-3 || tooClose(seigs, src, 1e-6*sb) {
			return
		}
		sGot, sErr := NewContourEvaluatorBackend(s).CountRect(src, ContourOptions{})
		dGot, dErr := NewContourEvaluatorBackend(sd).CountRect(src, ContourOptions{})
		if sErr != nil || dErr != nil {
			return // a stall is a legitimate refusal on either backend
		}
		if sGot != dGot {
			t.Fatalf("structured CountRect(%+v) = %d, dense backend says %d (n=%d)", src, sGot, dGot, n2)
		}
	})
}
