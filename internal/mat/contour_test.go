package mat

import (
	"math"
	"math/rand"
	"testing"
)

// diagCompanion builds a block-diagonal real matrix with the given complex
// eigenvalues (conjugate pairs as 2×2 rotation-scale blocks, reals on the
// diagonal), then similarity-scrambles it with a random orthogonal-ish
// transform so the test exercises dense LU paths.
func contourTestMatrix(t *testing.T, rng *rand.Rand, eigs []complex128) *Matrix {
	t.Helper()
	n := 0
	for _, e := range eigs {
		if imag(e) != 0 {
			n += 2
		} else {
			n++
		}
	}
	m := NewMatrix(n, n)
	i := 0
	for _, e := range eigs {
		if imag(e) != 0 {
			m.Set(i, i, real(e))
			m.Set(i, i+1, imag(e))
			m.Set(i+1, i, -imag(e))
			m.Set(i+1, i+1, real(e))
			i += 2
		} else {
			m.Set(i, i, real(e))
			i++
		}
	}
	// Similarity transform with a well-conditioned random perturbation of
	// the identity: A' = T A T⁻¹ keeps the spectrum exactly.
	tm := NewMatrix(n, n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			v := 0.1 * (rng.Float64() - 0.5)
			if r == c {
				v += 1
			}
			tm.Set(r, c, v)
		}
	}
	tInv, err := Inverse(tm)
	if err != nil {
		t.Fatalf("Inverse: %v", err)
	}
	return tm.Mul(m).Mul(tInv)
}

// countInRect counts how many of eigs fall strictly inside the rectangle.
func countInRect(eigs []complex128, r RectContour) int {
	n := 0
	for _, e := range eigs {
		if imag(e) != 0 {
			// the conjugate is also an eigenvalue
			for _, z := range []complex128{e, complex(real(e), -imag(e))} {
				if real(z) > r.ReLo && real(z) < r.ReHi && imag(z) > r.ImLo && imag(z) < r.ImHi {
					n++
				}
			}
		} else if real(e) > r.ReLo && real(e) < r.ReHi && 0 > r.ImLo && 0 < r.ImHi {
			n++
		}
	}
	return n
}

func TestCountRectKnownSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	eigs := []complex128{
		complex(-1, 3), complex(-0.5, 7), complex(0.2, 5), complex(-2, 0), complex(1.5, 0),
	}
	m := contourTestMatrix(t, rng, eigs)
	ev := NewContourEvaluator(m)
	cases := []RectContour{
		{ReLo: -4, ReHi: 4, ImLo: -10, ImHi: 10}, // everything
		{ReLo: -4, ReHi: 0, ImLo: 1, ImHi: 10},   // upper-left cluster
		{ReLo: 0, ReHi: 4, ImLo: 1, ImHi: 10},    // upper-right single
		{ReLo: -4, ReHi: 4, ImLo: -0.5, ImHi: 0.5},
		{ReLo: 2, ReHi: 3, ImLo: 2, ImHi: 3}, // empty
	}
	for _, rc := range cases {
		want := countInRect(eigs, rc)
		got, err := ev.CountRect(rc, ContourOptions{})
		if err != nil {
			t.Fatalf("CountRect(%+v): %v", rc, err)
		}
		if got != want {
			t.Errorf("CountRect(%+v) = %d, want %d", rc, got, want)
		}
	}
	if ev.Nodes == 0 {
		t.Error("evaluator did not record any nodes")
	}
}

func TestCountRectRandomVsDenseEig(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(5)
		m := NewMatrix(n, n)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				m.Set(r, c, 2*(rng.Float64()-0.5))
			}
		}
		eigs, err := EigenValues(m)
		if err != nil {
			continue
		}
		ev := NewContourEvaluator(m)
		bound := ev.EigenBound()
		// Rectangle edges at random, kept clear of eigenvalues.
		for rect := 0; rect < 3; rect++ {
			rc := RectContour{
				ReLo: -bound * rng.Float64(), ReHi: bound * rng.Float64(),
				ImLo: -bound * rng.Float64(), ImHi: bound * rng.Float64(),
			}
			if rc.ReHi-rc.ReLo < 1e-3 || rc.ImHi-rc.ImLo < 1e-3 {
				continue
			}
			if tooClose(eigs, rc, 1e-6*bound) {
				continue
			}
			want := 0
			for _, e := range eigs {
				if real(e) > rc.ReLo && real(e) < rc.ReHi && imag(e) > rc.ImLo && imag(e) < rc.ImHi {
					want++
				}
			}
			got, err := ev.CountRect(rc, ContourOptions{})
			if err != nil {
				// A stall on an adversarial random rectangle is allowed —
				// the production caller perturbs and retries — but a wrong
				// count is not.
				continue
			}
			if got != want {
				t.Fatalf("trial %d rect %+v: count %d, want %d (eigs %v)", trial, rc, got, want, eigs)
			}
		}
	}
}

// tooClose reports whether any eigenvalue sits within eps of the
// rectangle's boundary lines (where the quadrature may legitimately stall).
func tooClose(eigs []complex128, r RectContour, eps float64) bool {
	for _, e := range eigs {
		re, im := real(e), imag(e)
		onX := im >= r.ImLo-eps && im <= r.ImHi+eps
		onY := re >= r.ReLo-eps && re <= r.ReHi+eps
		if onX && (math.Abs(re-r.ReLo) < eps || math.Abs(re-r.ReHi) < eps) {
			return true
		}
		if onY && (math.Abs(im-r.ImLo) < eps || math.Abs(im-r.ImHi) < eps) {
			return true
		}
	}
	return false
}

func TestCountRectDegenerate(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, -1) // eigenvalues ±i
	ev := NewContourEvaluator(m)
	if _, err := ev.CountRect(RectContour{ReLo: 1, ReHi: 1, ImLo: 0, ImHi: 1}, ContourOptions{}); err == nil {
		t.Error("empty rectangle accepted")
	}
	got, err := ev.CountRect(RectContour{ReLo: -0.5, ReHi: 0.5, ImLo: 0.5, ImHi: 1.5}, ContourOptions{})
	if err != nil || got != 1 {
		t.Errorf("count around +i = %d, %v; want 1, nil", got, err)
	}
	if b := ev.EigenBound(); b < 1 || b > 1+1e-12 {
		t.Errorf("EigenBound = %g, want 1", b)
	}
}
