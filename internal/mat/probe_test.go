package mat

import (
	"math"
	"testing"
)

// probeTestMatrix builds a block-diagonal matrix with prescribed imaginary
// eigenvalue pairs ±jw (2×2 rotation generators) and real eigenvalues, then
// hides the structure under an orthogonal similarity so the probe cannot
// exploit sparsity.
func probeTestMatrix(imagEigs []float64, realEigs []float64) *Matrix {
	n := 2*len(imagEigs) + len(realEigs)
	a := NewMatrix(n, n)
	k := 0
	for _, w := range imagEigs {
		a.Set(k, k+1, w)
		a.Set(k+1, k, -w)
		k += 2
	}
	for _, r := range realEigs {
		a.Set(k, k, r)
		k++
	}
	// Similarity by a product of Givens rotations (deterministic angles).
	for i := 0; i+1 < n; i++ {
		c, s := math.Cos(0.3+0.1*float64(i)), math.Sin(0.3+0.1*float64(i))
		for j := 0; j < n; j++ {
			x, y := a.At(i, j), a.At(i+1, j)
			a.Set(i, j, c*x-s*y)
			a.Set(i+1, j, s*x+c*y)
		}
		for j := 0; j < n; j++ {
			x, y := a.At(j, i), a.At(j, i+1)
			a.Set(j, i, c*x-s*y)
			a.Set(j, i+1, s*x+c*y)
		}
	}
	return a
}

func TestImagEigenProbeFindsCrossing(t *testing.T) {
	m := probeTestMatrix([]float64{3.0, 40.0}, []float64{-1, -2, 5, -7, 11})
	probe := NewImagEigenProbe(m)
	for _, tc := range []struct {
		target, want float64
	}{
		{2.5, 3.0},
		{3.4, 3.0},
		{37, 40.0},
	} {
		got, ok, err := probe.NearestCrossing(tc.target, 0)
		if err != nil {
			t.Fatalf("NearestCrossing(%g): %v", tc.target, err)
		}
		if !ok {
			t.Fatalf("NearestCrossing(%g): no imaginary eigenvalue found, want %g", tc.target, tc.want)
		}
		if math.Abs(got-tc.want) > 1e-6*tc.want {
			t.Fatalf("NearestCrossing(%g) = %.12g, want %.12g", tc.target, got, tc.want)
		}
	}
}

func TestImagEigenProbeRejectsRealSpectrum(t *testing.T) {
	// No imaginary eigenvalues at all: every probe must come back negative.
	m := probeTestMatrix(nil, []float64{-1, -2, 3, 5, -7, 11, 13})
	probe := NewImagEigenProbe(m)
	for _, target := range []float64{0.5, 3, 10} {
		if w, ok, err := probe.NearestCrossing(target, 0); err != nil {
			t.Fatalf("NearestCrossing(%g): %v", target, err)
		} else if ok {
			t.Fatalf("NearestCrossing(%g) claimed an imaginary eigenvalue at %g on a real-spectrum matrix", target, w)
		}
	}
}

func TestImagEigenProbeExactShift(t *testing.T) {
	// Shift landing exactly on an eigenvalue makes M²+ω²I singular; the
	// probe must report the crossing rather than fail.
	m := probeTestMatrix([]float64{2.0}, []float64{-3, 4})
	probe := NewImagEigenProbe(m)
	w, ok, err := probe.NearestCrossing(2.0, 0)
	if err != nil || !ok {
		t.Fatalf("NearestCrossing(2.0) = (%g, %v, %v), want exact hit", w, ok, err)
	}
	if math.Abs(w-2.0) > 1e-8 {
		t.Fatalf("NearestCrossing(2.0) = %.12g, want 2", w)
	}
}
