package mat

import (
	"fmt"
	"math"
	"math/cmplx"
)

// CMatrix is a dense, row-major complex matrix.
type CMatrix struct {
	Rows, Cols int
	Data       []complex128 // len == Rows*Cols, row-major
}

// NewCMatrix returns a zero r×c complex matrix.
func NewCMatrix(r, c int) *CMatrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %d×%d", r, c))
	}
	return &CMatrix{Rows: r, Cols: c, Data: make([]complex128, r*c)}
}

// NewCMatrixFrom builds a complex matrix from a slice of rows.
func NewCMatrixFrom(rows [][]complex128) *CMatrix {
	r := len(rows)
	if r == 0 {
		return NewCMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewCMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("mat: ragged rows")
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// CIdentity returns the n×n complex identity.
func CIdentity(n int) *CMatrix {
	m := NewCMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// RealToComplex lifts a real matrix into a complex one.
func RealToComplex(a *Matrix) *CMatrix {
	m := NewCMatrix(a.Rows, a.Cols)
	for i, v := range a.Data {
		m.Data[i] = complex(v, 0)
	}
	return m
}

// At returns element (i,j).
func (m *CMatrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *CMatrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared storage).
func (m *CMatrix) Row(i int) []complex128 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *CMatrix) Clone() *CMatrix {
	c := NewCMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Col returns a copy of column j.
func (m *CMatrix) Col(j int) []complex128 {
	out := make([]complex128, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// H returns the conjugate transpose as a new matrix.
func (m *CMatrix) H() *CMatrix {
	t := NewCMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = cmplx.Conj(m.Data[i*m.Cols+j])
		}
	}
	return t
}

// T returns the (non-conjugating) transpose.
func (m *CMatrix) T() *CMatrix {
	t := NewCMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Add returns m + b.
func (m *CMatrix) Add(b *CMatrix) *CMatrix {
	checkSameShapeC(m, b)
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out
}

// Sub returns m − b.
func (m *CMatrix) Sub(b *CMatrix) *CMatrix {
	checkSameShapeC(m, b)
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out
}

// Scale returns s·m.
func (m *CMatrix) Scale(s complex128) *CMatrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// Mul returns the matrix product m·b.
func (m *CMatrix) Mul(b *CMatrix) *CMatrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %d×%d · %d×%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewCMatrix(m.Rows, b.Cols)
	CMulInto(out, m, b)
	return out
}

// CMulInto computes dst = a·b for complex matrices. dst must not alias a or b.
func CMulInto(dst, a, b *CMatrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("mat: CMulInto shape mismatch")
	}
	n := a.Cols
	bc := b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*n : (i+1)*n]
		drow := dst.Data[i*bc : (i+1)*bc]
		for j := range drow {
			drow[j] = 0
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*bc : (k+1)*bc]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MulVec returns m·x.
func (m *CMatrix) MulVec(x []complex128) []complex128 {
	return m.MulVecInto(make([]complex128, m.Rows), x)
}

// MulVecInto computes dst = m·x into the caller-owned dst
// (allocation-free). dst must have length m.Rows and not alias x.
func (m *CMatrix) MulVecInto(dst, x []complex128) []complex128 {
	if m.Cols != len(x) || len(dst) != m.Rows {
		panic("mat: MulVecInto shape mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s complex128
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
	return dst
}

// MulVecH returns mᴴ·x.
func (m *CMatrix) MulVecH(x []complex128) []complex128 {
	return m.MulVecHInto(make([]complex128, m.Cols), x)
}

// MulVecHInto computes dst = mᴴ·x into the caller-owned dst
// (allocation-free). dst must have length m.Cols and not alias x.
func (m *CMatrix) MulVecHInto(dst, x []complex128) []complex128 {
	if m.Rows != len(x) || len(dst) != m.Cols {
		panic("mat: MulVecHInto shape mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, v := range row {
			dst[j] += cmplx.Conj(v) * xi
		}
	}
	return dst
}

// FrobNorm returns the Frobenius norm.
func (m *CMatrix) FrobNorm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest entry magnitude.
func (m *CMatrix) MaxAbs() float64 {
	mx := 0.0
	for _, v := range m.Data {
		if a := cmplx.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Real returns the element-wise real part.
func (m *CMatrix) Real() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = real(v)
	}
	return out
}

// Imag returns the element-wise imaginary part.
func (m *CMatrix) Imag() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = imag(v)
	}
	return out
}

// Equalish reports whether m and b agree entry-wise within tol.
func (m *CMatrix) Equalish(b *CMatrix, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i, v := range m.Data {
		if cmplx.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func checkSameShapeC(a, b *CMatrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: shape mismatch %d×%d vs %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// CDot returns xᴴ·y (conjugating the first argument).
func CDot(x, y []complex128) complex128 {
	if len(x) != len(y) {
		panic("mat: CDot length mismatch")
	}
	var s complex128
	for i, v := range x {
		s += cmplx.Conj(v) * y[i]
	}
	return s
}

// CNorm2 returns the Euclidean norm of the complex vector x.
func CNorm2(x []complex128) float64 {
	s := 0.0
	for _, v := range x {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(s)
}
