package mat

import (
	"math"
	"math/cmplx"
	"sort"
)

// CSVD holds a (thin) singular value decomposition A = U·diag(S)·Vᴴ of an
// m×n complex matrix with m ≥ n: U is m×n with orthonormal columns, V is
// n×n unitary, and S holds the singular values in descending order.
type CSVD struct {
	U *CMatrix
	S []float64
	V *CMatrix
}

// CSVDecompose computes the thin SVD of a complex matrix using one-sided
// Jacobi rotations. One-sided Jacobi is chosen for its simplicity and high
// relative accuracy; the matrices in this codebase are small (port counts up
// to ~100), so its O(n³) sweeps are not a bottleneck. For m < n the
// decomposition is computed on the conjugate transpose and swapped back.
func CSVDecompose(a *CMatrix) *CSVD {
	if a.Rows < a.Cols {
		s := CSVDecompose(a.H())
		return &CSVD{U: s.V, S: s.S, V: s.U}
	}
	m, n := a.Rows, a.Cols
	w := a.Clone()    // working copy; columns converge to U·diag(S)
	v := CIdentity(n) // accumulates right-hand rotations

	const tol = 1e-14
	maxSweeps := 60
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// Gram entries of columns p,q.
				var app, aqq float64
				var apq complex128
				for i := 0; i < m; i++ {
					cp := w.At(i, p)
					cq := w.At(i, q)
					app += real(cp)*real(cp) + imag(cp)*imag(cp)
					aqq += real(cq)*real(cq) + imag(cq)*imag(cq)
					apq += cmplx.Conj(cp) * cq
				}
				mag := cmplx.Abs(apq)
				if mag <= tol*math.Sqrt(app*aqq) || mag == 0 {
					continue
				}
				off++
				// Phase so the effective off-diagonal entry is real:
				// with alpha = apq/|apq|, the pair (col_p, col_q·conj(alpha))
				// has real positive inner product |apq|.
				alpha := apq / complex(mag, 0)
				// Real Jacobi rotation diagonalizing [[app,mag],[mag,aqq]].
				tau := (aqq - app) / (2 * mag)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				cs := 1 / math.Sqrt(1+t*t)
				sn := cs * t
				// Column update:
				//   new_p = cs·p − sn·conj(alpha)·q
				//   new_q = sn·alpha·p + cs·q
				ca := complex(sn, 0) * cmplx.Conj(alpha)
				cb := complex(sn, 0) * alpha
				ccs := complex(cs, 0)
				for i := 0; i < m; i++ {
					cp := w.At(i, p)
					cq := w.At(i, q)
					w.Set(i, p, ccs*cp-ca*cq)
					w.Set(i, q, cb*cp+ccs*cq)
				}
				for i := 0; i < n; i++ {
					vp := v.At(i, p)
					vq := v.At(i, q)
					v.Set(i, p, ccs*vp-ca*vq)
					v.Set(i, q, cb*vp+ccs*vq)
				}
			}
		}
		if off == 0 {
			break
		}
	}

	// Extract singular values and left vectors.
	s := make([]float64, n)
	u := NewCMatrix(m, n)
	for j := 0; j < n; j++ {
		norm := 0.0
		for i := 0; i < m; i++ {
			c := w.At(i, j)
			norm += real(c)*real(c) + imag(c)*imag(c)
		}
		norm = math.Sqrt(norm)
		s[j] = norm
		if norm > 0 {
			inv := complex(1/norm, 0)
			for i := 0; i < m; i++ {
				u.Set(i, j, w.At(i, j)*inv)
			}
		} else {
			// Zero singular value: leave the U column zero; callers that
			// need a full basis can re-orthogonalize.
			u.Set(j%m, j, 1)
		}
	}

	// Sort descending by singular value.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s[idx[a]] > s[idx[b]] })
	ss := make([]float64, n)
	us := NewCMatrix(m, n)
	vs := NewCMatrix(n, n)
	for newj, oldj := range idx {
		ss[newj] = s[oldj]
		for i := 0; i < m; i++ {
			us.Set(i, newj, u.At(i, oldj))
		}
		for i := 0; i < n; i++ {
			vs.Set(i, newj, v.At(i, oldj))
		}
	}
	return &CSVD{U: us, S: ss, V: vs}
}

// SingularValues returns just the singular values of a complex matrix in
// descending order.
func SingularValues(a *CMatrix) []float64 {
	return CSVDecompose(a).S
}

// MaxSingularValue returns the spectral norm ‖a‖₂ of a complex matrix.
func MaxSingularValue(a *CMatrix) float64 {
	s := SingularValues(a)
	if len(s) == 0 {
		return 0
	}
	return s[0]
}

// MaxSingularValuePower estimates the largest singular value of a using
// power iteration on AᴴA. v0 (length a.Cols) provides a warm start and is
// overwritten with the converged right singular vector; pass nil for a
// default start. This is the fast path used by frequency sweeps, where the
// singular vector changes slowly from one frequency to the next.
func MaxSingularValuePower(a *CMatrix, v0 []complex128, tol float64, maxIter int) (float64, []complex128) {
	n := a.Cols
	if n == 0 {
		return 0, nil
	}
	v := v0
	if v == nil || len(v) != n {
		v = make([]complex128, n)
		for i := range v {
			// Deterministic, not axis-aligned start.
			v[i] = complex(1+0.01*float64(i%7), 0.005*float64(i%5))
		}
	}
	normalize := func(x []complex128) float64 {
		nn := CNorm2(x)
		if nn == 0 {
			return 0
		}
		inv := complex(1/nn, 0)
		for i := range x {
			x[i] *= inv
		}
		return nn
	}
	normalize(v)
	sigma := 0.0
	for it := 0; it < maxIter; it++ {
		av := a.MulVec(v)
		w := a.MulVecH(av) // AᴴA v
		lambda := normalize(w)
		copy(v, w)
		newSigma := math.Sqrt(lambda)
		if math.Abs(newSigma-sigma) <= tol*math.Max(1, newSigma) {
			sigma = newSigma
			break
		}
		sigma = newSigma
	}
	return sigma, v
}

// SingularValuesOnly computes the singular values of a complex matrix by
// one-sided Jacobi without accumulating the singular vectors — roughly a
// third cheaper than CSVDecompose. Used by passivity sweeps, which need
// exact σ_max at many frequencies (iterative estimators stall on the
// near-degenerate singular clusters that PDN scattering matrices exhibit
// at the passivity boundary) but no vectors.
func SingularValuesOnly(a *CMatrix) []float64 {
	w := a
	if a.Rows < a.Cols {
		w = a.H()
	} else {
		w = a.Clone()
	}
	m, n := w.Rows, w.Cols
	const tol = 1e-14
	for sweep := 0; sweep < 60; sweep++ {
		off := 0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				var app, aqq float64
				var apq complex128
				for i := 0; i < m; i++ {
					cp := w.At(i, p)
					cq := w.At(i, q)
					app += real(cp)*real(cp) + imag(cp)*imag(cp)
					aqq += real(cq)*real(cq) + imag(cq)*imag(cq)
					apq += cmplx.Conj(cp) * cq
				}
				mag := cmplx.Abs(apq)
				if mag <= tol*math.Sqrt(app*aqq) || mag == 0 {
					continue
				}
				off++
				alpha := apq / complex(mag, 0)
				tau := (aqq - app) / (2 * mag)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				cs := 1 / math.Sqrt(1+t*t)
				sn := cs * t
				ca := complex(sn, 0) * cmplx.Conj(alpha)
				cb := complex(sn, 0) * alpha
				ccs := complex(cs, 0)
				for i := 0; i < m; i++ {
					cp := w.At(i, p)
					cq := w.At(i, q)
					w.Set(i, p, ccs*cp-ca*cq)
					w.Set(i, q, cb*cp+ccs*cq)
				}
			}
		}
		if off == 0 {
			break
		}
	}
	s := make([]float64, n)
	for j := 0; j < n; j++ {
		norm := 0.0
		for i := 0; i < m; i++ {
			c := w.At(i, j)
			norm += real(c)*real(c) + imag(c)*imag(c)
		}
		s[j] = math.Sqrt(norm)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(s)))
	return s
}

// MaxSingularValueSubspace estimates the largest singular value of a by
// block (subspace) power iteration on AᴴA with block size k. Unlike the
// single-vector variant, it converges reliably when the top singular
// values are nearly degenerate — the situation at shallow passivity
// violations, where σ₁ ≈ σ₂ ≈ 1. v0 (n×k, column-major blocks of length
// a.Cols) warm-starts the subspace and is overwritten; pass nil to start
// fresh.
func MaxSingularValueSubspace(a *CMatrix, v0 [][]complex128, k int, tol float64, maxIter int) (float64, [][]complex128) {
	n := a.Cols
	if n == 0 {
		return 0, nil
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	v := v0
	if len(v) != k {
		v = make([][]complex128, k)
		for j := range v {
			col := make([]complex128, n)
			for i := range col {
				// Deterministic, linearly independent starts.
				col[i] = complex(1+0.013*float64((i*(j+3))%11), 0.007*float64((i+j*5)%7))
			}
			v[j] = col
		}
	}
	orthonormalize(v)
	sigma := 0.0
	stable := 0
	for it := 0; it < maxIter; it++ {
		// W_j = AᴴA v_j.
		lambdaMax := 0.0
		for j := range v {
			av := a.MulVec(v[j])
			w := a.MulVecH(av)
			// Rayleigh quotient before overwriting.
			if l := real(CDot(v[j], w)); l > lambdaMax {
				lambdaMax = l
			}
			v[j] = w
		}
		orthonormalize(v)
		newSigma := math.Sqrt(math.Max(lambdaMax, 0))
		if math.Abs(newSigma-sigma) <= tol*math.Max(1, newSigma) {
			stable++
			if stable >= 2 {
				sigma = newSigma
				break
			}
		} else {
			stable = 0
		}
		sigma = newSigma
	}
	return sigma, v
}

// orthonormalize applies modified Gram–Schmidt to the columns in place,
// re-randomizing (deterministically) any column that collapses.
func orthonormalize(v [][]complex128) {
	for j := range v {
		for i := 0; i < j; i++ {
			c := CDot(v[i], v[j])
			for t := range v[j] {
				v[j][t] -= c * v[i][t]
			}
		}
		nrm := CNorm2(v[j])
		if nrm < 1e-300 {
			for t := range v[j] {
				v[j][t] = complex(float64((t*7+j*3)%13)-6, float64((t*5+j)%11)-5)
			}
			for i := 0; i < j; i++ {
				c := CDot(v[i], v[j])
				for t := range v[j] {
					v[j][t] -= c * v[i][t]
				}
			}
			nrm = CNorm2(v[j])
		}
		inv := complex(1/nrm, 0)
		for t := range v[j] {
			v[j][t] *= inv
		}
	}
}

// SVD holds a thin real singular value decomposition A = U·diag(S)·Vᵀ.
type SVD struct {
	U *Matrix
	S []float64
	V *Matrix
}

// SVDecompose computes the thin SVD of a real matrix by lifting to the
// complex one-sided Jacobi kernel. All intermediate rotations stay real in
// exact arithmetic; residual imaginary parts are discarded.
func SVDecompose(a *Matrix) *SVD {
	cs := CSVDecompose(RealToComplex(a))
	return &SVD{U: cs.U.Real(), S: cs.S, V: cs.V.Real()}
}
