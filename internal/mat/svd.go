package mat

import "math"

// CSVD holds a (thin) singular value decomposition A = U·diag(S)·Vᴴ of an
// m×n complex matrix with m ≥ n: U is m×n with orthonormal columns, V is
// n×n unitary, and S holds the singular values in descending order.
type CSVD struct {
	U *CMatrix
	S []float64
	V *CMatrix
}

// CSVDecompose computes the thin SVD of a complex matrix using one-sided
// Jacobi rotations on packed column-major panels (see jacobiSweepsPacked).
// One-sided Jacobi is chosen for its simplicity and high relative accuracy;
// the matrices in this codebase are small (port counts up to ~100). For
// m < n the decomposition is computed on the conjugate transpose and
// swapped back. Allocation-sensitive callers should hold a CSVDWorkspace
// and use CSVDecomposeInto directly.
func CSVDecompose(a *CMatrix) *CSVD {
	// The workspace is discarded, so the returned matrices are exclusively
	// owned by the caller.
	return CSVDecomposeInto(&CSVDWorkspace{}, a)
}

// SingularValues returns just the singular values of a complex matrix in
// descending order.
func SingularValues(a *CMatrix) []float64 {
	return CSVDecompose(a).S
}

// MaxSingularValue returns the spectral norm ‖a‖₂ of a complex matrix.
func MaxSingularValue(a *CMatrix) float64 {
	s := SingularValues(a)
	if len(s) == 0 {
		return 0
	}
	return s[0]
}

// MaxSingularValuePower estimates the largest singular value of a using
// power iteration on AᴴA. v0 (length a.Cols) provides a warm start and is
// overwritten with the converged right singular vector; pass nil for a
// default start. This is the fast path used by frequency sweeps, where the
// singular vector changes slowly from one frequency to the next.
func MaxSingularValuePower(a *CMatrix, v0 []complex128, tol float64, maxIter int) (float64, []complex128) {
	n := a.Cols
	if n == 0 {
		return 0, nil
	}
	v := v0
	if v == nil || len(v) != n {
		v = make([]complex128, n)
		for i := range v {
			// Deterministic, not axis-aligned start.
			v[i] = complex(1+0.01*float64(i%7), 0.005*float64(i%5))
		}
	}
	normalize := func(x []complex128) float64 {
		nn := CNorm2(x)
		if nn == 0 {
			return 0
		}
		inv := complex(1/nn, 0)
		for i := range x {
			x[i] *= inv
		}
		return nn
	}
	normalize(v)
	sigma := 0.0
	for it := 0; it < maxIter; it++ {
		av := a.MulVec(v)
		w := a.MulVecH(av) // AᴴA v
		lambda := normalize(w)
		copy(v, w)
		newSigma := math.Sqrt(lambda)
		if math.Abs(newSigma-sigma) <= tol*math.Max(1, newSigma) {
			sigma = newSigma
			break
		}
		sigma = newSigma
	}
	return sigma, v
}

// SingularValuesOnly computes the singular values of a complex matrix by
// one-sided Jacobi without accumulating the singular vectors — roughly a
// third cheaper than CSVDecompose. Used by passivity sweeps, which need
// exact σ_max at many frequencies (iterative estimators stall on the
// near-degenerate singular clusters that PDN scattering matrices exhibit
// at the passivity boundary) but no vectors.
func SingularValuesOnly(a *CMatrix) []float64 {
	return SingularValuesInto(&CSVDWorkspace{}, a, nil)
}

// MaxSingularValueSubspace estimates the largest singular value of a by
// block (subspace) power iteration on AᴴA with block size k. Unlike the
// single-vector variant, it converges reliably when the top singular
// values are nearly degenerate — the situation at shallow passivity
// violations, where σ₁ ≈ σ₂ ≈ 1. v0 (n×k, column-major blocks of length
// a.Cols) warm-starts the subspace and is overwritten; pass nil to start
// fresh.
func MaxSingularValueSubspace(a *CMatrix, v0 [][]complex128, k int, tol float64, maxIter int) (float64, [][]complex128) {
	n := a.Cols
	if n == 0 {
		return 0, nil
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	v := v0
	if len(v) != k {
		v = make([][]complex128, k)
		for j := range v {
			col := make([]complex128, n)
			for i := range col {
				// Deterministic, linearly independent starts.
				col[i] = complex(1+0.013*float64((i*(j+3))%11), 0.007*float64((i+j*5)%7))
			}
			v[j] = col
		}
	}
	orthonormalize(v)
	sigma := 0.0
	stable := 0
	for it := 0; it < maxIter; it++ {
		// W_j = AᴴA v_j.
		lambdaMax := 0.0
		for j := range v {
			av := a.MulVec(v[j])
			w := a.MulVecH(av)
			// Rayleigh quotient before overwriting.
			if l := real(CDot(v[j], w)); l > lambdaMax {
				lambdaMax = l
			}
			v[j] = w
		}
		orthonormalize(v)
		newSigma := math.Sqrt(math.Max(lambdaMax, 0))
		if math.Abs(newSigma-sigma) <= tol*math.Max(1, newSigma) {
			stable++
			if stable >= 2 {
				sigma = newSigma
				break
			}
		} else {
			stable = 0
		}
		sigma = newSigma
	}
	return sigma, v
}

// orthonormalize applies modified Gram–Schmidt to the columns in place,
// re-randomizing (deterministically) any column that collapses.
func orthonormalize(v [][]complex128) {
	for j := range v {
		for i := 0; i < j; i++ {
			c := CDot(v[i], v[j])
			for t := range v[j] {
				v[j][t] -= c * v[i][t]
			}
		}
		nrm := CNorm2(v[j])
		if nrm < 1e-300 {
			for t := range v[j] {
				v[j][t] = complex(float64((t*7+j*3)%13)-6, float64((t*5+j)%11)-5)
			}
			for i := 0; i < j; i++ {
				c := CDot(v[i], v[j])
				for t := range v[j] {
					v[j][t] -= c * v[i][t]
				}
			}
			nrm = CNorm2(v[j])
		}
		inv := complex(1/nrm, 0)
		for t := range v[j] {
			v[j][t] *= inv
		}
	}
}

// SVD holds a thin real singular value decomposition A = U·diag(S)·Vᵀ.
type SVD struct {
	U *Matrix
	S []float64
	V *Matrix
}

// SVDecompose computes the thin SVD of a real matrix by lifting to the
// complex one-sided Jacobi kernel. All intermediate rotations stay real in
// exact arithmetic; residual imaginary parts are discarded.
func SVDecompose(a *Matrix) *SVD {
	cs := CSVDecompose(RealToComplex(a))
	return &SVD{U: cs.U.Real(), S: cs.S, V: cs.V.Real()}
}
