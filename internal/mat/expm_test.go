package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExpmZeroIsIdentity(t *testing.T) {
	e, err := Expm(NewMatrix(5, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !e.Equalish(Identity(5), 1e-14) {
		t.Fatalf("expm(0) != I:\n%v", e)
	}
}

func TestExpmDiagonal(t *testing.T) {
	d := NewMatrixFrom([][]float64{{-1, 0, 0}, {0, 2.5, 0}, {0, 0, -7}})
	e, err := Expm(d)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		want := math.Exp(d.At(i, i))
		if math.Abs(e.At(i, i)-want) > 1e-12*want {
			t.Fatalf("expm diag %d: %v want %v", i, e.At(i, i), want)
		}
		for j := 0; j < 3; j++ {
			if i != j && math.Abs(e.At(i, j)) > 1e-12 {
				t.Fatalf("expm diag off-diagonal (%d,%d) = %v", i, j, e.At(i, j))
			}
		}
	}
}

func TestExpmNilpotent(t *testing.T) {
	// A = [[0,1],[0,0]] is nilpotent: e^A = I + A exactly.
	a := NewMatrixFrom([][]float64{{0, 1}, {0, 0}})
	e, err := Expm(a)
	if err != nil {
		t.Fatal(err)
	}
	want := NewMatrixFrom([][]float64{{1, 1}, {0, 1}})
	if !e.Equalish(want, 1e-14) {
		t.Fatalf("expm(nilpotent):\n%v", e)
	}
}

func TestExpmRotation(t *testing.T) {
	// A = [[0,−θ],[θ,0]] generates a rotation by θ.
	for _, theta := range []float64{0.1, 1, math.Pi / 2, 3, 12.7} {
		a := NewMatrixFrom([][]float64{{0, -theta}, {theta, 0}})
		e, err := Expm(a)
		if err != nil {
			t.Fatal(err)
		}
		want := NewMatrixFrom([][]float64{
			{math.Cos(theta), -math.Sin(theta)},
			{math.Sin(theta), math.Cos(theta)},
		})
		if !e.Equalish(want, 1e-10) {
			t.Fatalf("θ=%v:\n%v\nwant\n%v", theta, e, want)
		}
	}
}

func TestExpmInverseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for n := 1; n <= 12; n += 4 {
		a := randMatrix(rng, n, n)
		e, err := Expm(a)
		if err != nil {
			t.Fatal(err)
		}
		em, err := Expm(a.Scale(-1))
		if err != nil {
			t.Fatal(err)
		}
		if !e.Mul(em).Equalish(Identity(n), 1e-8) {
			t.Fatalf("n=%d: expm(A)·expm(−A) != I", n)
		}
	}
}

func TestExpmSemigroupProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a := randMatrix(rng, n, n)
		e1, err := Expm(a)
		if err != nil {
			return false
		}
		e2, err := Expm(a.Scale(2))
		if err != nil {
			return false
		}
		return e1.Mul(e1).Equalish(e2, 1e-7*(1+e2.MaxAbs()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestExpmLargeNormScaling(t *testing.T) {
	// Force the scaling branch with a large-norm stable matrix; check
	// against the semigroup identity expm(A) = expm(A/16)^16.
	rng := rand.New(rand.NewSource(22))
	a := randStable(rng, 8).Scale(40)
	e, err := Expm(a)
	if err != nil {
		t.Fatal(err)
	}
	small, err := Expm(a.Scale(1.0 / 16))
	if err != nil {
		t.Fatal(err)
	}
	acc := Identity(8)
	for k := 0; k < 16; k++ {
		acc = acc.Mul(small)
	}
	if !e.Equalish(acc, 1e-6*(1+acc.MaxAbs())) {
		t.Fatal("scaling branch disagrees with repeated squaring of the small exponential")
	}
}

func TestExpmTraceDeterminantIdentity(t *testing.T) {
	// det(expm(A)) = exp(tr(A)).
	rng := rand.New(rand.NewSource(23))
	a := randMatrix(rng, 6, 6)
	e, err := Expm(a)
	if err != nil {
		t.Fatal(err)
	}
	lu, err := LUFactor(e)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(a.Trace())
	if math.Abs(lu.Det()-want) > 1e-8*want {
		t.Fatalf("det(expm(A)) = %v want %v", lu.Det(), want)
	}
}

func TestExpmRejectsNonSquare(t *testing.T) {
	if _, err := Expm(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestNorm1(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, -4}, {-2, 3}})
	if got := a.Norm1(); got != 7 {
		t.Fatalf("Norm1 = %v want 7", got)
	}
}
