package mat

import (
	"fmt"
	"math"
)

// IsQuasiUpperTriangular reports whether t is quasi-upper-triangular: all
// entries below the first sub-diagonal are (absolutely) below tol, and no
// two consecutive sub-diagonal entries are both above tol. Such matrices are
// already in real Schur form, which lets the Lyapunov solver skip the Schur
// decomposition entirely — the case for all pole-residue realizations in
// this codebase (block-diagonal with 2×2 complex-pair blocks).
func IsQuasiUpperTriangular(t *Matrix, tol float64) bool {
	if t.Rows != t.Cols {
		return false
	}
	n := t.Rows
	for i := 2; i < n; i++ {
		for j := 0; j < i-1; j++ {
			if math.Abs(t.At(i, j)) > tol {
				return false
			}
		}
	}
	prev := false
	for i := 1; i < n; i++ {
		cur := math.Abs(t.At(i, i-1)) > tol
		if cur && prev {
			return false
		}
		prev = cur
	}
	return true
}

// schurBlocks returns the diagonal block boundaries of a quasi-upper-
// triangular matrix: blocks[i] = (start, size) with size ∈ {1,2}.
func schurBlocks(t *Matrix, tol float64) [][2]int {
	n := t.Rows
	var blocks [][2]int
	i := 0
	for i < n {
		if i+1 < n && math.Abs(t.At(i+1, i)) > tol {
			blocks = append(blocks, [2]int{i, 2})
			i += 2
		} else {
			blocks = append(blocks, [2]int{i, 1})
			i++
		}
	}
	return blocks
}

// LyapQuasiTri solves the continuous Lyapunov equation
//
//	T·X + X·Tᵀ + C = 0
//
// for quasi-upper-triangular T (real Schur form) by Bartels–Stewart
// back-substitution. C must be square with matching dimension; it is not
// modified. The result is symmetrized when C is symmetric.
func LyapQuasiTri(t, c *Matrix) (*Matrix, error) {
	n := t.Rows
	if t.Cols != n || c.Rows != n || c.Cols != n {
		panic("mat: LyapQuasiTri dimension mismatch")
	}
	tol := 1e-12 * (1 + t.MaxAbs())
	blocks := schurBlocks(t, tol)
	nb := len(blocks)
	x := NewMatrix(n, n)

	// Solve block column j (descending), block row i (descending).
	for jb := nb - 1; jb >= 0; jb-- {
		j0, js := blocks[jb][0], blocks[jb][1]
		for ib := nb - 1; ib >= 0; ib-- {
			i0, is := blocks[ib][0], blocks[ib][1]
			// RHS = −C_ij − Σ_{k>i} T_ik X_kj − Σ_{k>j} X_ik (T_jk)ᵀ.
			rhs := NewMatrix(is, js)
			for r := 0; r < is; r++ {
				for cc := 0; cc < js; cc++ {
					rhs.Set(r, cc, -c.At(i0+r, j0+cc))
				}
			}
			// − T[i0:i0+is, i0+is:] · X[i0+is:, j0:j0+js]
			for r := 0; r < is; r++ {
				for cc := 0; cc < js; cc++ {
					s := 0.0
					for k := i0 + is; k < n; k++ {
						s += t.At(i0+r, k) * x.At(k, j0+cc)
					}
					rhs.Set(r, cc, rhs.At(r, cc)-s)
				}
			}
			// − X[i0:i0+is, j0+js:] · Tᵀ[j0+js:, j0:j0+js]
			for r := 0; r < is; r++ {
				for cc := 0; cc < js; cc++ {
					s := 0.0
					for k := j0 + js; k < n; k++ {
						s += x.At(i0+r, k) * t.At(j0+cc, k)
					}
					rhs.Set(r, cc, rhs.At(r, cc)-s)
				}
			}
			// Solve T_ii·Y + Y·T_jjᵀ = RHS via the Kronecker system
			// (I ⊗ T_ii + T_jj ⊗ I)·vec(Y) = vec(RHS), column-major vec.
			m := is * js
			kr := NewMatrix(m, m)
			for cc := 0; cc < js; cc++ {
				for r := 0; r < is; r++ {
					row := cc*is + r
					for r2 := 0; r2 < is; r2++ {
						kr.Set(row, cc*is+r2, kr.At(row, cc*is+r2)+t.At(i0+r, i0+r2))
					}
					for c2 := 0; c2 < js; c2++ {
						kr.Set(row, c2*is+r, kr.At(row, c2*is+r)+t.At(j0+cc, j0+c2))
					}
				}
			}
			vecRHS := make([]float64, m)
			for cc := 0; cc < js; cc++ {
				for r := 0; r < is; r++ {
					vecRHS[cc*is+r] = rhs.At(r, cc)
				}
			}
			sol, err := SolveLin(kr, vecRHS)
			if err != nil {
				return nil, fmt.Errorf("mat: Lyapunov block (%d,%d) singular (eigenvalue pair sums to zero): %w", ib, jb, err)
			}
			for cc := 0; cc < js; cc++ {
				for r := 0; r < is; r++ {
					x.Set(i0+r, j0+cc, sol[cc*is+r])
				}
			}
		}
	}
	return x, nil
}

// Lyapunov solves A·X + X·Aᵀ + C = 0 for general square A. When A is
// already quasi-upper-triangular the Bartels–Stewart back-substitution is
// applied directly; otherwise a real Schur decomposition is computed first.
func Lyapunov(a, c *Matrix) (*Matrix, error) {
	n := a.Rows
	if a.Cols != n || c.Rows != n || c.Cols != n {
		panic("mat: Lyapunov dimension mismatch")
	}
	tol := 1e-12 * (1 + a.MaxAbs())
	if IsQuasiUpperTriangular(a, tol) {
		return LyapQuasiTri(a, c)
	}
	sch, err := SchurDecompose(a, true)
	if err != nil {
		return nil, err
	}
	// A = Q T Qᵀ ⇒ T·Y + Y·Tᵀ + QᵀCQ = 0 with Y = QᵀXQ.
	qt := sch.Q.T()
	cq := qt.Mul(c).Mul(sch.Q)
	y, err := LyapQuasiTri(sch.T, cq)
	if err != nil {
		return nil, err
	}
	x := sch.Q.Mul(y).Mul(qt)
	return x, nil
}

// ControllabilityGramian solves A·P + P·Aᵀ = −B·Bᵀ for a stable A,
// returning the (symmetric positive semidefinite) controllability Gramian.
func ControllabilityGramian(a, b *Matrix) (*Matrix, error) {
	if a.Rows != b.Rows {
		panic("mat: ControllabilityGramian dimension mismatch")
	}
	bbT := b.Mul(b.T())
	p, err := Lyapunov(a, bbT)
	if err != nil {
		return nil, err
	}
	p.Symmetrize()
	return p, nil
}

// ObservabilityGramian solves Aᵀ·Q + Q·A = −Cᵀ·C for a stable A.
//
// When A is quasi-upper-triangular (the block-diagonal pole realizations
// everywhere in this library), the naive route through Lyapunov(Aᵀ, ·)
// would lose the structure — Aᵀ is quasi-LOWER-triangular — and pay for a
// Schur decomposition. The 180°-flip J·Aᵀ·J (J = exchange matrix) is
// quasi-upper-triangular again, and with Y = J·Q·J the equation becomes
// (J·Aᵀ·J)·Y + Y·(J·Aᵀ·J)ᵀ = −J·CᵀC·J, solvable by direct
// back-substitution.
func ObservabilityGramian(a, c *Matrix) (*Matrix, error) {
	if a.Cols != c.Cols {
		panic("mat: ObservabilityGramian dimension mismatch")
	}
	ctc := c.T().Mul(c)
	tol := 1e-12 * (1 + a.MaxAbs())
	if IsQuasiUpperTriangular(a, tol) {
		b := flip180(a.T())
		y, err := LyapQuasiTri(b, flip180(ctc))
		if err != nil {
			return nil, err
		}
		q := flip180(y)
		q.Symmetrize()
		return q, nil
	}
	q, err := Lyapunov(a.T(), ctc)
	if err != nil {
		return nil, err
	}
	q.Symmetrize()
	return q, nil
}

// flip180 returns J·M·J: the matrix rotated by 180° (rows and columns both
// reversed).
func flip180(m *Matrix) *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(m.Rows-1-i, m.Cols-1-j, m.At(i, j))
		}
	}
	return out
}
