package mat

import (
	"errors"
	"math"
	"math/cmplx"
)

// ErrSingular is returned when a factorization encounters an (numerically)
// singular matrix.
var ErrSingular = errors.New("mat: matrix is singular to working precision")

// LU holds an LU factorization with partial pivoting: P·A = L·U.
type LU struct {
	lu   *Matrix
	piv  []int
	sign int
}

// LUFactor computes the LU factorization of the square matrix a with partial
// pivoting. The input is not modified.
func LUFactor(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		panic("mat: LUFactor of non-square matrix")
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Partial pivot: largest |entry| in column k at or below diagonal.
		p := k
		mx := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > mx {
				mx, p = a, i
			}
		}
		if mx == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rk := lu.Row(k)
			rp := lu.Row(p)
			for j := 0; j < n; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri := lu.Row(i)
			rk := lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// SolveVec solves A·x = b, returning x.
func (f *LU) SolveVec(b []float64) []float64 {
	n := f.lu.Rows
	if len(b) != n {
		panic("mat: LU SolveVec length mismatch")
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		row := f.lu.Row(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with upper triangle.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x
}

// Solve solves A·X = B column-by-column, returning X.
func (f *LU) Solve(b *Matrix) *Matrix {
	n := f.lu.Rows
	if b.Rows != n {
		panic("mat: LU Solve shape mismatch")
	}
	x := NewMatrix(n, b.Cols)
	col := make([]float64, n)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.At(i, j)
		}
		sol := f.SolveVec(col)
		for i := 0; i < n; i++ {
			x.Set(i, j, sol[i])
		}
	}
	return x
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	n := f.lu.Rows
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Inverse returns A⁻¹ for the square matrix a.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := LUFactor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(Identity(a.Rows)), nil
}

// SolveLin solves the linear system a·x = b for a single right-hand side.
func SolveLin(a *Matrix, b []float64) ([]float64, error) {
	f, err := LUFactor(a)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b), nil
}

// CLU holds a complex LU factorization with partial pivoting.
type CLU struct {
	lu  *CMatrix
	piv []int
}

// CLUFactor computes the LU factorization of the square complex matrix a.
func CLUFactor(a *CMatrix) (*CLU, error) {
	if a.Rows != a.Cols {
		panic("mat: CLUFactor of non-square matrix")
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	for k := 0; k < n; k++ {
		p := k
		mx := cmplx.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := cmplx.Abs(lu.At(i, k)); a > mx {
				mx, p = a, i
			}
		}
		if mx == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rk := lu.Row(k)
			rp := lu.Row(p)
			for j := 0; j < n; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri := lu.Row(i)
			rk := lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return &CLU{lu: lu, piv: piv}, nil
}

// SolveVec solves A·x = b for a complex right-hand side.
func (f *CLU) SolveVec(b []complex128) []complex128 {
	n := f.lu.Rows
	if len(b) != n {
		panic("mat: CLU SolveVec length mismatch")
	}
	x := make([]complex128, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	for i := 1; i < n; i++ {
		row := f.lu.Row(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x
}

// Solve solves A·X = B for complex matrices.
func (f *CLU) Solve(b *CMatrix) *CMatrix {
	n := f.lu.Rows
	if b.Rows != n {
		panic("mat: CLU Solve shape mismatch")
	}
	x := NewCMatrix(n, b.Cols)
	col := make([]complex128, n)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.At(i, j)
		}
		sol := f.SolveVec(col)
		for i := 0; i < n; i++ {
			x.Set(i, j, sol[i])
		}
	}
	return x
}

// CInverse returns A⁻¹ for a square complex matrix.
func CInverse(a *CMatrix) (*CMatrix, error) {
	f, err := CLUFactor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(CIdentity(a.Rows)), nil
}

// CSolveLin solves a·x = b for a single complex right-hand side.
func CSolveLin(a *CMatrix, b []complex128) ([]complex128, error) {
	f, err := CLUFactor(a)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b), nil
}
