package mat

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// This file implements the contour-quadrature kernel behind the
// argument-principle eigenvalue counter: the number of eigenvalues of a
// real matrix M inside a closed contour C equals
//
//	N = (1/2πi) ∮_C tr[(zI − M)⁻¹] dz = (1/2πi) ∮_C d log det(zI − M),
//
// i.e. the winding number of det(zI − M) around the origin as z walks C.
// The integrand is the logarithmic-derivative trace; integrating it exactly
// along the contour is the total change of arg det(zI − M), which the
// kernel accumulates as a sum of wrapped phase steps over an adaptively
// bisected node set — each step is refined until its principal-value phase
// change is provably the true one (|Δφ| below MaxStep ≪ π), and the whole
// quadrature is accepted only when the resulting winding is within IntTol
// of an integer at two refinement levels (MaxStep and MaxStep/2) that
// agree. Each node costs one determinant evaluation through the
// evaluator's DetBackend — a full complex LU of (zI − M) on the dense
// oracle path, an O(N·p²) determinant-lemma sweep on the structured path —
// and only the determinant's argument (plus an overflow-free
// log-magnitude) is taken from the factors.

// ErrContourStall is returned when the contour quadrature cannot stabilize
// to an integer within its node budget — the typical cause is an eigenvalue
// lying on (or hugging) the contour itself. Callers should perturb the
// rectangle and retry.
var ErrContourStall = errors.New("mat: contour quadrature did not stabilize (eigenvalue on or near the contour)")

// RectContour is an axis-aligned rectangle in the complex plane, walked
// counterclockwise by the quadrature.
type RectContour struct {
	ReLo, ReHi float64 // real-part bounds, ReLo < ReHi
	ImLo, ImHi float64 // imaginary-part bounds, ImLo < ImHi
}

// ContourOptions tunes CountRect. The zero value selects the defaults.
type ContourOptions struct {
	// InitNodes is the initial node count per rectangle side (default 8;
	// corners are always nodes — the integrand kinks there).
	InitNodes int
	// MaxNodes bounds the determinant evaluations of one CountRect call
	// (default 2048). Exceeding it returns ErrContourStall.
	MaxNodes int
	// MaxStep is the largest accepted phase step between adjacent nodes in
	// radians (default π/2). The stability cross-check always re-runs the
	// accumulation at MaxStep/2.
	MaxStep float64
	// IntTol is the accepted distance of the winding number from an
	// integer (default 0.25).
	IntTol float64
}

func (o *ContourOptions) defaults() {
	if o.InitNodes <= 0 {
		o.InitNodes = 8
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = 2048
	}
	if o.MaxStep <= 0 {
		o.MaxStep = math.Pi / 2
	}
	if o.IntTol <= 0 {
		o.IntTol = 0.25
	}
}

// ContourEvaluator counts eigenvalues of one real matrix inside
// rectangular contours, delegating the per-node determinant to a
// DetBackend (the dense complex LU by default; a StructuredShifted kernel
// for diagonal-plus-low-rank matrices). It is not safe for concurrent use.
type ContourEvaluator struct {
	b DetBackend
	// Nodes counts the determinant evaluations performed over the
	// evaluator's lifetime.
	Nodes int
}

// NewContourEvaluator prepares an evaluator for the square matrix m over
// the dense LU backend (the matrix is retained, not copied).
func NewContourEvaluator(m *Matrix) *ContourEvaluator {
	return NewContourEvaluatorBackend(NewDenseShifted(m))
}

// NewContourEvaluatorBackend prepares an evaluator over an arbitrary
// determinant backend.
func NewContourEvaluatorBackend(b DetBackend) *ContourEvaluator {
	return &ContourEvaluator{b: b}
}

// Dim returns the matrix dimension.
func (e *ContourEvaluator) Dim() int { return e.b.Dim() }

// EigenBound returns the backend's rigorous bound on the magnitude of
// every eigenvalue of the matrix.
func (e *ContourEvaluator) EigenBound() float64 { return e.b.EigenBound() }

// DetPhase returns the principal argument of det(zI − M) in (−π, π].
// ErrSingular reports that z is (numerically) an eigenvalue.
func (e *ContourEvaluator) DetPhase(z complex128) (float64, error) {
	p, _, err := e.detPhasePivot(z)
	return p, err
}

// detPhasePivot counts the node and delegates to the backend; the second
// result is the spectrum-proximity alarm (an upper bound on σ_min(zI − M)
// that collapses as z approaches the spectrum). The quadrature uses it to
// rule out aliasing: a contour chord longer than the endpoint's alarm
// floor may hide an eigenvalue (and a full 2π of phase) between its nodes.
func (e *ContourEvaluator) detPhasePivot(z complex128) (float64, float64, error) {
	e.Nodes++
	return e.b.DetPhasePivot(z)
}

// DenseShifted is the dense DetBackend: one in-place complex LU
// factorization of zI − M per DetPhasePivot call, O(N³) time and O(N²)
// scratch. It is the oracle the structured kernel is cross-validated
// against. Not safe for concurrent use.
type DenseShifted struct {
	m       *Matrix
	scratch []complex128
}

// NewDenseShifted prepares the dense backend for the square matrix m (the
// matrix is retained, not copied).
func NewDenseShifted(m *Matrix) *DenseShifted {
	if m.Rows != m.Cols {
		panic("mat: NewDenseShifted of non-square matrix")
	}
	n := m.Rows
	return &DenseShifted{m: m, scratch: make([]complex128, n*n)}
}

// Dim returns the matrix dimension.
func (e *DenseShifted) Dim() int { return e.m.Rows }

// EigenBound returns a rigorous bound on the magnitude of every eigenvalue
// of the matrix: min(‖M‖∞, ‖M‖₁) (both are induced norms, so every
// eigenvalue satisfies |λ| ≤ ‖M‖).
func (e *DenseShifted) EigenBound() float64 {
	n := e.m.Rows
	colSum := make([]float64, n)
	inf := 0.0
	for i := 0; i < n; i++ {
		row := e.m.Row(i)
		rs := 0.0
		for j, v := range row {
			a := math.Abs(v)
			rs += a
			colSum[j] += a
		}
		if rs > inf {
			inf = rs
		}
	}
	one := 0.0
	for _, s := range colSum {
		if s > one {
			one = s
		}
	}
	return math.Min(inf, one)
}

// DetPhasePivot returns the principal argument of det(zI − M) in (−π, π]
// via an in-place complex LU factorization with partial pivoting, plus the
// smallest pivot magnitude — an upper bound on σ_min(zI − M) that tracks
// the distance from z to the spectrum. ErrSingular reports that z is
// (numerically) an eigenvalue.
func (e *DenseShifted) DetPhasePivot(z complex128) (float64, float64, error) {
	n := e.m.Rows
	a := e.scratch
	for i := 0; i < n; i++ {
		row := e.m.Row(i)
		base := i * n
		for j := 0; j < n; j++ {
			a[base+j] = -complex(row[j], 0)
		}
		a[base+i] += z
	}
	phase := 0.0
	logAbs := 0.0
	minPiv := math.Inf(1)
	for k := 0; k < n; k++ {
		// Partial pivot on |entry| in column k.
		p, mx := k, cmplx.Abs(a[k*n+k])
		for i := k + 1; i < n; i++ {
			if ab := cmplx.Abs(a[i*n+k]); ab > mx {
				mx, p = ab, i
			}
		}
		if mx == 0 {
			return 0, 0, ErrSingular
		}
		if p != k {
			rk, rp := a[k*n:(k+1)*n], a[p*n:(p+1)*n]
			for j := k; j < n; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
			phase += math.Pi // row swap flips the determinant sign
		}
		pivot := a[k*n+k]
		phase += cmplx.Phase(pivot)
		logAbs += math.Log(mx)
		if mx < minPiv {
			minPiv = mx
		}
		for i := k + 1; i < n; i++ {
			m := a[i*n+k] / pivot
			if m == 0 {
				continue
			}
			ri, rk := a[i*n:(i+1)*n], a[k*n:(k+1)*n]
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	if math.IsInf(logAbs, -1) || math.IsNaN(logAbs) {
		return 0, 0, ErrSingular
	}
	return wrapPi(phase), minPiv, nil
}

// wrapPi reduces an angle to (−π, π].
func wrapPi(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a <= -math.Pi {
		a += 2 * math.Pi
	} else if a > math.Pi {
		a -= 2 * math.Pi
	}
	return a
}

// rectPoint maps the perimeter parameter t ∈ [0, 4) onto the rectangle,
// counterclockwise from the bottom-left corner: side 0 is the bottom edge
// (left → right), 1 the right edge (up), 2 the top edge (right → left),
// 3 the left edge (down).
func (r RectContour) rectPoint(t float64) complex128 {
	side := int(t)
	f := t - float64(side)
	switch side & 3 {
	case 0:
		return complex(r.ReLo+f*(r.ReHi-r.ReLo), r.ImLo)
	case 1:
		return complex(r.ReHi, r.ImLo+f*(r.ImHi-r.ImLo))
	case 2:
		return complex(r.ReHi-f*(r.ReHi-r.ReLo), r.ImHi)
	default:
		return complex(r.ReLo, r.ImHi-f*(r.ImHi-r.ImLo))
	}
}

// contourRun accumulates the winding of det(zI − M) around one rectangle
// at one refinement level, sharing evaluated phases across levels through
// the cache (keyed by the dyadic perimeter parameter, so keys are exact).
type contourRun struct {
	e         *ContourEvaluator
	rect      RectContour
	cache     map[float64]phasePoint
	limit     int // evaluator node budget (absolute)
	initNodes int // initial nodes per side
}

// phasePoint is one evaluated contour node: the principal argument of
// det(zI − M) and the smallest LU pivot magnitude (spectrum-proximity
// alarm).
type phasePoint struct {
	phi float64
	piv float64
}

func (c *contourRun) phase(t float64) (phasePoint, error) {
	if p, ok := c.cache[t]; ok {
		return p, nil
	}
	if c.e.Nodes >= c.limit {
		return phasePoint{}, ErrContourStall
	}
	phi, piv, err := c.e.detPhasePivot(c.rect.rectPoint(t))
	if err != nil {
		return phasePoint{}, err
	}
	p := phasePoint{phi: phi, piv: piv}
	c.cache[t] = p
	return p, nil
}

// maxContourDepth bounds the bisection depth of one contour segment: 2⁻⁴⁰
// of a rectangle side is far below the separation any representable
// eigenvalue geometry produces, so hitting it means the phase step never
// settles (eigenvalue on the contour).
const maxContourDepth = 40

// winding accumulates the wrapped phase steps over the adaptively bisected
// perimeter at the given step threshold. Initial nodes are initNodes per
// side (corners included exactly once); midpoints are dyadic in the
// perimeter parameter so repeated levels share cache entries exactly.
//
// A chord is bisected when its wrapped phase step exceeds maxStep OR when
// it is too long for the endpoint pivot floors to rule out aliasing. The
// phase derivative along the contour is |tr((zI−M)⁻¹)| ≤ dim/dist(z, spec),
// so the true phase change over a chord is at most chord·dim/dist; using
// the smaller endpoint pivot (which collapses near the spectrum) as the
// distance proxy, the step is trusted only when chord·dim ≤ maxStep·pivot —
// then the true change stays below maxStep < π and cannot wrap. Without
// the dim factor an eigenvalue cloud near a long edge threads whole turns
// of phase between nodes whose wrapped steps all look small.
func (c *contourRun) winding(maxStep float64) (float64, error) {
	var total float64
	pivScale := maxStep / float64(c.e.Dim())
	chord := func(t0, t1 float64) float64 {
		return cmplx.Abs(c.rect.rectPoint(t1) - c.rect.rectPoint(t0))
	}
	var rec func(t0 float64, p0 phasePoint, t1 float64, p1 phasePoint, depth int) error
	rec = func(t0 float64, p0 phasePoint, t1 float64, p1 phasePoint, depth int) error {
		d := wrapPi(p1.phi - p0.phi)
		if math.Abs(d) <= maxStep && chord(t0, t1) <= pivScale*math.Min(p0.piv, p1.piv) {
			total += d
			return nil
		}
		if depth >= maxContourDepth {
			return ErrContourStall
		}
		tm := (t0 + t1) / 2
		pm, err := c.phase(tm)
		if err != nil {
			return err
		}
		if err := rec(t0, p0, tm, pm, depth+1); err != nil {
			return err
		}
		return rec(tm, pm, t1, p1, depth+1)
	}
	n := c.initNodes
	ts := make([]float64, 0, 4*n)
	for side := 0; side < 4; side++ {
		for i := 0; i < n; i++ {
			ts = append(ts, float64(side)+float64(i)/float64(n))
		}
	}
	ps := make([]phasePoint, len(ts))
	for i, t := range ts {
		p, err := c.phase(t)
		if err != nil {
			return 0, err
		}
		ps[i] = p
	}
	for i := range ts {
		j := (i + 1) % len(ts)
		t1 := ts[j]
		if j == 0 {
			t1 = 4 // close the loop without re-evaluating t=0
		}
		if err := rec(ts[i], ps[i], t1, ps[j], 0); err != nil {
			return 0, err
		}
	}
	return total, nil
}

// CountRect counts the eigenvalues of the evaluator's matrix inside the
// rectangle by the argument principle. The quadrature is accepted only when
// the winding number lands within opts.IntTol of the same integer at two
// refinement levels (opts.MaxStep and opts.MaxStep/2); otherwise it returns
// ErrContourStall (typically an eigenvalue on the contour — perturb the
// rectangle and retry). ErrSingular reports a node landing exactly on an
// eigenvalue.
func (e *ContourEvaluator) CountRect(rect RectContour, opts ContourOptions) (int, error) {
	opts.defaults()
	if !(rect.ReLo < rect.ReHi) || !(rect.ImLo < rect.ImHi) {
		return 0, fmt.Errorf("mat: CountRect of empty rectangle %+v", rect)
	}
	run := &contourRun{
		e:     e,
		rect:  rect,
		cache: make(map[float64]phasePoint),
		limit: e.Nodes + opts.MaxNodes,
	}
	// Progressive refinement: each level doubles the initial grid (a dyadic
	// superset of the previous one, so cached phases are reused) and halves
	// the accepted phase step. Doubling the grid — not just tightening the
	// step — is what breaks phase aliasing: a true step of 2π−ε wraps to −ε
	// and passes any step threshold, but the inserted midpoint exposes it.
	// The count is accepted when two consecutive levels land on the same
	// integer within IntTol.
	const maxLevels = 6
	prev := math.NaN()
	nodes := opts.InitNodes
	step := opts.MaxStep
	for level := 0; level < maxLevels; level++ {
		run.initNodes = nodes
		w, err := run.winding(step)
		if err != nil {
			return 0, err
		}
		k := math.Round(w / (2 * math.Pi))
		if !math.IsNaN(prev) {
			pk := math.Round(prev / (2 * math.Pi))
			if pk == k &&
				math.Abs(w/(2*math.Pi)-k) <= opts.IntTol &&
				math.Abs(prev/(2*math.Pi)-pk) <= opts.IntTol {
				if k < 0 {
					// A negative winding around a counterclockwise contour
					// is a quadrature failure, never a valid count.
					return 0, ErrContourStall
				}
				return int(k), nil
			}
		}
		prev = w
		nodes *= 2
		step /= 2
	}
	return 0, ErrContourStall
}
