package mat

import (
	"math/rand"
	"testing"
)

func randomCMatrix(rng *rand.Rand, r, c int) *CMatrix {
	m := NewCMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return m
}

// TestCSVDecomposeIntoMatchesCSVDecompose: the workspace path must agree
// bitwise with the allocating wrapper (they share the packed kernel), for
// tall, wide and square shapes, including reuse of one workspace across
// different sizes.
func TestCSVDecomposeIntoMatchesCSVDecompose(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var ws CSVDWorkspace
	for _, dims := range [][2]int{{4, 4}, {7, 3}, {3, 7}, {12, 12}, {2, 9}, {9, 2}} {
		a := randomCMatrix(rng, dims[0], dims[1])
		want := CSVDecompose(a)
		got := CSVDecomposeInto(&ws, a)
		if len(got.S) != len(want.S) {
			t.Fatalf("%v: %d singular values, want %d", dims, len(got.S), len(want.S))
		}
		for i := range want.S {
			if got.S[i] != want.S[i] {
				t.Fatalf("%v: S[%d] = %v, want %v", dims, i, got.S[i], want.S[i])
			}
		}
		if !got.U.Equalish(want.U, 0) || !got.V.Equalish(want.V, 0) {
			t.Fatalf("%v: singular vectors differ", dims)
		}
	}
}

// TestSingularValuesIntoMatchesOnly: values and order must match the
// allocating entry point bitwise.
func TestSingularValuesIntoMatchesOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var ws CSVDWorkspace
	var buf []float64
	for _, dims := range [][2]int{{5, 5}, {8, 3}, {3, 8}} {
		a := randomCMatrix(rng, dims[0], dims[1])
		want := SingularValuesOnly(a)
		buf = SingularValuesInto(&ws, a, buf)
		if len(buf) != len(want) {
			t.Fatalf("%v: %d values, want %d", dims, len(buf), len(want))
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("%v: S[%d] = %v, want %v", dims, i, buf[i], want[i])
			}
		}
	}
}

// TestCSVDecomposeIntoZeroAllocs: after warm-up, the workspace SVD kernels
// must not allocate — they run once per frequency inside the passivity
// sweeps.
func TestCSVDecomposeIntoZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomCMatrix(rng, 6, 6)
	var ws CSVDWorkspace
	CSVDecomposeInto(&ws, a) // warm-up sizes the buffers
	if n := testing.AllocsPerRun(50, func() {
		CSVDecomposeInto(&ws, a)
	}); n != 0 {
		t.Fatalf("CSVDecomposeInto allocates %v times per call after warm-up", n)
	}

	var ws2 CSVDWorkspace
	buf := SingularValuesInto(&ws2, a, nil)
	if n := testing.AllocsPerRun(50, func() {
		buf = SingularValuesInto(&ws2, a, buf)
	}); n != 0 {
		t.Fatalf("SingularValuesInto allocates %v times per call after warm-up", n)
	}
}

// TestSolveVecIntoMatchesSolveVec covers the allocation-free Cholesky
// solve, including the aliased (in-place) form.
func TestSolveVecIntoMatchesSolveVec(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	n := 9
	// SPD matrix A = MᵀM + I.
	m := NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	a := m.T().Mul(m)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+1)
	}
	chol, err := CholFactor(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want := chol.SolveVec(b)
	dst := make([]float64, n)
	chol.SolveVecInto(dst, b)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("SolveVecInto[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
	// In place: dst aliases b.
	inPlace := append([]float64(nil), b...)
	chol.SolveVecInto(inPlace, inPlace)
	for i := range want {
		if inPlace[i] != want[i] {
			t.Fatalf("aliased SolveVecInto[%d] = %v, want %v", i, inPlace[i], want[i])
		}
	}
	if n := testing.AllocsPerRun(50, func() {
		chol.SolveVecInto(dst, b)
	}); n != 0 {
		t.Fatalf("SolveVecInto allocates %v times per call", n)
	}
}
