package mat

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// randStructured draws a random diagonal-plus-low-rank representation with
// a mix of 1×1 and 2×2 blocks. rankDef zeroes one column pair of U/V to
// exercise rank-deficient low-rank factors.
func randStructured(rng *rand.Rand, n, p int, rankDef bool) *StructuredShifted {
	diag := make([]float64, n)
	skew := make([]float64, n)
	for k := 0; k < n; {
		if k+1 < n && rng.Float64() < 0.6 {
			al := -0.2 - 2*rng.Float64()
			be := 0.5 + 4*rng.Float64()
			diag[k], diag[k+1] = al, al
			skew[k] = be
			k += 2
			continue
		}
		diag[k] = -0.1 - 3*rng.Float64()
		k++
	}
	u := NewMatrix(n, p)
	v := NewMatrix(n, p)
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			u.Set(i, j, rng.NormFloat64())
			v.Set(i, j, rng.NormFloat64())
		}
	}
	if rankDef && p > 0 {
		for i := 0; i < n; i++ {
			u.Set(i, p-1, 0)
			v.Set(i, p-1, 0)
		}
	}
	return NewStructuredShifted(diag, skew, u, v)
}

// denseLogDet computes the phase and log-magnitude of det(zI − M) by an
// independent complex LU — the oracle for the determinant-lemma path.
func denseLogDet(t *testing.T, m *Matrix, z complex128) (float64, float64) {
	t.Helper()
	n := m.Rows
	a := make([]complex128, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = -complex(m.At(i, j), 0)
		}
		a[i*n+i] += z
	}
	phase, logAbs := 0.0, 0.0
	for k := 0; k < n; k++ {
		p, mx := k, cmplx.Abs(a[k*n+k])
		for i := k + 1; i < n; i++ {
			if ab := cmplx.Abs(a[i*n+k]); ab > mx {
				mx, p = ab, i
			}
		}
		if mx == 0 {
			t.Fatalf("denseLogDet: singular at z=%v", z)
		}
		if p != k {
			for j := k; j < n; j++ {
				a[k*n+j], a[p*n+j] = a[p*n+j], a[k*n+j]
			}
			phase += math.Pi
		}
		piv := a[k*n+k]
		phase += cmplx.Phase(piv)
		logAbs += math.Log(mx)
		for i := k + 1; i < n; i++ {
			f := a[i*n+k] / piv
			for j := k + 1; j < n; j++ {
				a[i*n+j] -= f * a[k*n+j]
			}
		}
	}
	return wrapPi(phase), logAbs
}

func testShifts(rng *rand.Rand, bound float64) []complex128 {
	zs := []complex128{
		complex(0, 0.7*bound),
		complex(0.3*bound, -0.4*bound),
		complex(-0.5*bound, 0.1*bound),
	}
	for i := 0; i < 3; i++ {
		zs = append(zs, complex((2*rng.Float64()-1)*bound, (2*rng.Float64()-1)*bound))
	}
	return zs
}

func TestStructuredDetOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(30)
		p := 1 + rng.Intn(5)
		if p > n {
			p = n
		}
		s := randStructured(rng, n, p, trial%5 == 0)
		m := s.Materialize()
		bound := s.EigenBound() + 1
		for _, z := range testShifts(rng, bound) {
			wantPhase, wantLog := denseLogDet(t, m, z)
			phase, logAbs, err := s.LogDetPhase(z)
			if err != nil {
				t.Fatalf("trial %d n=%d p=%d z=%v: LogDetPhase: %v", trial, n, p, z, err)
			}
			if d := math.Abs(wrapPi(phase - wantPhase)); d > 1e-7 {
				t.Fatalf("trial %d n=%d p=%d z=%v: phase %g vs dense %g (Δ=%g)",
					trial, n, p, z, phase, wantPhase, d)
			}
			if d := math.Abs(logAbs - wantLog); d > 1e-7*(1+math.Abs(wantLog)) {
				t.Fatalf("trial %d n=%d p=%d z=%v: log|det| %g vs dense %g",
					trial, n, p, z, logAbs, wantLog)
			}
			gotPhase, piv, err := s.DetPhasePivot(z)
			if err != nil {
				t.Fatalf("trial %d z=%v: DetPhasePivot: %v", trial, z, err)
			}
			if gotPhase != phase {
				t.Fatalf("trial %d z=%v: DetPhasePivot phase %g != LogDetPhase %g", trial, z, gotPhase, phase)
			}
			if !(piv > 0) || math.IsInf(piv, 0) {
				t.Fatalf("trial %d z=%v: bad proximity alarm %g", trial, z, piv)
			}
		}
	}
}

func TestStructuredSolveOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(30)
		p := 1 + rng.Intn(5)
		if p > n {
			p = n
		}
		s := randStructured(rng, n, p, trial%7 == 0)
		m := s.Materialize()
		bound := s.EigenBound() + 1
		for _, z := range testShifts(rng, bound)[:3] {
			b := make([]complex128, n)
			for i := range b {
				b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			// Dense oracle: solve (zI − M)·x = b.
			a := NewCMatrix(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					a.Set(i, j, -complex(m.At(i, j), 0))
				}
				a.Set(i, i, a.At(i, i)+z)
			}
			want, err := CSolveLin(a, append([]complex128(nil), b...))
			if err != nil {
				t.Fatalf("trial %d z=%v: dense solve: %v", trial, z, err)
			}
			got := make([]complex128, n)
			if err := s.SolveInto(z, got, b); err != nil {
				t.Fatalf("trial %d z=%v: SolveInto: %v", trial, z, err)
			}
			scale := 0.0
			for _, w := range want {
				scale += real(w)*real(w) + imag(w)*imag(w)
			}
			scale = math.Sqrt(scale)
			for i := range want {
				if d := cmplx.Abs(got[i] - want[i]); d > 1e-8*(1+scale) {
					t.Fatalf("trial %d n=%d p=%d z=%v: x[%d]=%v vs dense %v", trial, n, p, z, i, got[i], want[i])
				}
			}
		}
	}
}

func TestStructuredSquareOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(20)
		p := 1 + rng.Intn(4)
		if p > n {
			p = n
		}
		s := randStructured(rng, n, p, false)
		m := s.Materialize()
		want := NewMatrix(n, n)
		MulInto(want, m, m)
		got := s.Square().Materialize()
		scale := want.MaxAbs() + 1
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d := math.Abs(got.At(i, j) - want.At(i, j)); d > 1e-10*scale {
					t.Fatalf("trial %d: M²[%d,%d] = %g vs dense %g", trial, i, j, got.At(i, j), want.At(i, j))
				}
			}
		}
	}
}

func TestStructuredRealShiftSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(20)
		p := 1 + rng.Intn(4)
		if p > n {
			p = n
		}
		s := randStructured(rng, n, p, false)
		m := s.Materialize()
		sigma := 1.5*s.EigenBound() + 1 // safely outside the spectrum
		rs, err := s.RealShiftSolver(sigma)
		if err != nil {
			t.Fatalf("trial %d: RealShiftSolver: %v", trial, err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, -m.At(i, j))
			}
			a.Set(i, i, a.At(i, i)+sigma)
		}
		want, err := SolveLin(a, append([]float64(nil), b...))
		if err != nil {
			t.Fatalf("trial %d: dense solve: %v", trial, err)
		}
		got := rs.SolveVec(b)
		scale := math.Sqrt(dot(want, want)) + 1
		for i := range want {
			if d := math.Abs(got[i] - want[i]); d > 1e-9*scale {
				t.Fatalf("trial %d: x[%d]=%g vs dense %g", trial, i, got[i], want[i])
			}
		}
	}
}

func TestStructuredEigenBound(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(16)
		p := 1 + rng.Intn(3)
		if p > n {
			p = n
		}
		s := randStructured(rng, n, p, false)
		m := s.Materialize()
		eigs, err := EigenValues(m)
		if err != nil {
			t.Fatalf("trial %d: EigenValues: %v", trial, err)
		}
		bound := s.EigenBound()
		for _, ev := range eigs {
			if a := cmplx.Abs(ev); a > bound*(1+1e-12) {
				t.Fatalf("trial %d: |eig|=%g exceeds EigenBound %g", trial, a, bound)
			}
		}
		// The bound must dominate the dense evaluator's norm bound never
		// being looser than the materialized matrix's own, up to the
		// triangle-inequality split.
		if dense := NewDenseShifted(m).EigenBound(); bound < dense/2-1e-12 {
			t.Fatalf("trial %d: structured bound %g implausibly small vs dense %g", trial, bound, dense)
		}
	}
}

func TestStructuredCountRectAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 12; trial++ {
		n := 4 + rng.Intn(16)
		p := 1 + rng.Intn(3)
		if p > n {
			p = n
		}
		s := randStructured(rng, n, p, trial%4 == 0)
		m := s.Materialize()
		bound := s.EigenBound() + 1
		rect := RectContour{
			ReLo: -bound * (0.4 + 0.5*rng.Float64()),
			ReHi: bound * (0.1 + 0.4*rng.Float64()),
			ImLo: -bound * (0.3 + 0.5*rng.Float64()),
			ImHi: bound * (0.3 + 0.5*rng.Float64()),
		}
		opts := ContourOptions{MaxNodes: 20000}
		dense := NewContourEvaluator(m)
		dc, derr := dense.CountRect(rect, opts)
		structured := NewContourEvaluatorBackend(s)
		sc, serr := structured.CountRect(rect, opts)
		if (derr == nil) != (serr == nil) {
			// The two proximity alarms differ, so one backend may stall where
			// the other resolves; both failing or both succeeding with equal
			// counts are the only acceptable agreements for a clean rectangle.
			// Treat a one-sided stall as acceptable only if the other side's
			// count matches the eigenvalue oracle.
			eigs, err := EigenValues(m)
			if err != nil {
				t.Fatalf("trial %d: EigenValues: %v", trial, err)
			}
			want := 0
			for _, ev := range eigs {
				if real(ev) > rect.ReLo && real(ev) < rect.ReHi && imag(ev) > rect.ImLo && imag(ev) < rect.ImHi {
					want++
				}
			}
			if derr == nil && dc != want {
				t.Fatalf("trial %d: dense count %d vs oracle %d", trial, dc, want)
			}
			if serr == nil && sc != want {
				t.Fatalf("trial %d: structured count %d vs oracle %d", trial, sc, want)
			}
			continue
		}
		if derr != nil {
			continue // both stalled: nothing to compare
		}
		if dc != sc {
			t.Fatalf("trial %d n=%d p=%d rect=%+v: dense count %d != structured %d", trial, n, p, rect, dc, sc)
		}
	}
}
