package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQRLeastSquaresExact(t *testing.T) {
	// Square, consistent system: LS solution must equal the exact solution.
	rng := rand.New(rand.NewSource(20))
	a := randMatrix(rng, 8, 8)
	x := make([]float64, 8)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b := a.MulVec(x)
	got, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Abs(got[i]-x[i]) > 1e-8 {
			t.Fatalf("LS exact mismatch at %d: %v vs %v", i, got[i], x[i])
		}
	}
}

func TestQRLeastSquaresNormalEquations(t *testing.T) {
	// Overdetermined: QR solution satisfies AᵀA·x = Aᵀb.
	rng := rand.New(rand.NewSource(21))
	a := randMatrix(rng, 30, 6)
	b := make([]float64, 30)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ata := a.T().Mul(a)
	atb := a.MulVecT(b)
	lhs := ata.MulVec(x)
	for i := range lhs {
		if math.Abs(lhs[i]-atb[i]) > 1e-9*(1+math.Abs(atb[i])) {
			t.Fatalf("normal equations violated at %d: %v vs %v", i, lhs[i], atb[i])
		}
	}
}

func TestQRRIsTriangularAndReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := randMatrix(rng, 10, 5)
	f := QRFactor(a)
	r := f.R()
	for i := 1; i < r.Rows; i++ {
		for j := 0; j < i; j++ {
			if r.At(i, j) != 0 {
				t.Fatalf("R not triangular at (%d,%d)", i, j)
			}
		}
	}
	// ‖R‖F == ‖A‖F (orthogonal invariance) for full-column-rank tall A.
	if math.Abs(r.FrobNorm()-a.FrobNorm()) > 1e-10*a.FrobNorm() {
		t.Fatalf("Frobenius norm not preserved: %v vs %v", r.FrobNorm(), a.FrobNorm())
	}
	// ApplyQT preserves norms.
	v := make([]float64, 10)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	n0 := Norm2(v)
	f.ApplyQT(v)
	if math.Abs(Norm2(v)-n0) > 1e-10*n0 {
		t.Fatalf("ApplyQT changed the norm")
	}
}

func TestQRCompressR(t *testing.T) {
	// The compressed R₂₂ block must satisfy R₂₂ᵀR₂₂ = A₂ᵀ(I − P₁)A₂ where
	// P₁ projects onto range(A₁). Equivalently, least squares with the
	// compressed system gives the same solution for the trailing unknowns
	// when the leading unknowns are eliminated.
	rng := rand.New(rand.NewSource(23))
	m, n1, n2 := 40, 5, 4
	a := randMatrix(rng, m, n1+n2)
	r22 := QRCompressR(a, n1)
	if r22.Rows != n2 || r22.Cols != n2 {
		t.Fatalf("R22 dims %d×%d", r22.Rows, r22.Cols)
	}
	a1 := a.Slice(0, m, 0, n1)
	a2 := a.Slice(0, m, n1, n1+n2)
	// P₁ = A₁(A₁ᵀA₁)⁻¹A₁ᵀ
	inv, err := Inverse(a1.T().Mul(a1))
	if err != nil {
		t.Fatal(err)
	}
	p1 := a1.Mul(inv).Mul(a1.T())
	proj := a2.Sub(p1.Mul(a2))
	want := proj.T().Mul(proj) // = A₂ᵀ(I−P₁)A₂
	got := r22.T().Mul(r22)
	if !got.Equalish(want, 1e-8) {
		t.Fatalf("R22ᵀR22 mismatch:\n%v\nvs\n%v", got, want)
	}
}

func TestQRPropertyResidualOrthogonal(t *testing.T) {
	// LS residual must be orthogonal to the column space of A.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 8 + rng.Intn(20)
		n := 1 + rng.Intn(6)
		a := randMatrix(rng, m, n)
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			return true // rank-deficient random draw; skip
		}
		r := a.MulVec(x)
		for i := range r {
			r[i] = b[i] - r[i]
		}
		atr := a.MulVecT(r)
		return Norm2(atr) < 1e-8*(1+Norm2(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkQRFactor200x26(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := randMatrix(rng, 200, 26)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		QRFactor(a)
	}
}
