package mat

import (
	"math"
	"sort"
)

// ImagEigenProbe hunts for eigenvalues of a large real matrix M lying on
// (or near) the imaginary axis close to a caller-supplied target jω,
// without computing the full spectrum. It exists for the passivity
// certifier: the Hamiltonian test matrix of a macromodel has dimension
// N = 2·n·P, and the full Francis QR iteration behind EigenValues — ~40·N
// sweeps of O(N²) each — caps the exact oracle near N ≈ 2000. The probe
// pushes that frontier out: it forms M² once (a single O(N³) matrix
// product, with a far smaller constant than the QR iteration) and then
// answers each frequency query with one LU factorization plus a short
// shift-and-invert Arnoldi recurrence.
//
// The reduction to real arithmetic: for a real matrix, λ² is real and
// negative exactly when λ is purely imaginary and nonzero, so the
// imaginary eigenvalues jω₀ of M are in one-to-one correspondence with
// real eigenvalues −ω₀² of M². A complex shift jω therefore becomes the
// real shift −ω² of M², and a real-arithmetic Krylov iteration applies.
// The Arnoldi projection (rather than single-vector inverse iteration)
// matters because the neighbourhood of a high-Q resonance is an
// ill-conditioned cluster — the images of the poles themselves sit within
// a few γ·ω of any crossing — and a subspace resolves the whole cluster
// where one vector rattles between its members.
//
// The probe is a detector, not a certificate: a query only sees the
// cluster nearest its shift, so a negative verdict near ω does not
// exclude imaginary eigenvalues elsewhere, and every candidate it returns
// should be confirmed against the underlying transfer function. The probe
// is not safe for concurrent use.
type ImagEigenProbe struct {
	m2 *Matrix            // dense path: M², one LU per query
	s2 *StructuredShifted // structured path: factored M², Woodbury per query
}

// NewImagEigenProbe forms M² for the given square matrix (the only full
// O(N³) step; each query costs one LU at worst).
func NewImagEigenProbe(m *Matrix) *ImagEigenProbe {
	if m.Rows != m.Cols {
		panic("mat: ImagEigenProbe of non-square matrix")
	}
	n := m.Rows
	m2 := NewMatrix(n, n)
	MulInto(m2, m, m)
	return &ImagEigenProbe{m2: m2}
}

// NewStructuredImagEigenProbe builds the probe over a factored
// diagonal-plus-low-rank M: M² stays factored (StructuredShifted.Square,
// O(N·p²) once), and each frequency query costs one real-arithmetic
// Woodbury factorization plus the short Arnoldi recurrence — O(N·p²)
// instead of the dense path's O(N³)/O(N²) setup/solve.
func NewStructuredImagEigenProbe(s *StructuredShifted) *ImagEigenProbe {
	return &ImagEigenProbe{s2: s.Square()}
}

// Dim returns the probe's matrix dimension N.
func (p *ImagEigenProbe) Dim() int {
	if p.m2 != nil {
		return p.m2.Rows
	}
	return p.s2.Dim()
}

// probeMaxCandidates bounds the candidates one query returns (the caller
// pays a transfer-function confirmation per candidate).
const probeMaxCandidates = 4

// Candidates runs k steps (default 12) of shift-and-invert Arnoldi on M²
// with shift −ω² and returns candidate crossing frequencies ω̂ = √(−μ)
// for the Ritz values μ that are negative and near-real — consistent with
// an imaginary eigenvalue jω̂ of M near the target jω. Candidates are
// ordered by distance from the shift and capped; they are approximations
// extracted from an unconverged subspace, so callers MUST confirm each
// one independently (for the certifier: by sampling σ around ω̂).
func (p *ImagEigenProbe) Candidates(omega float64, k int) ([]float64, error) {
	n := p.Dim()
	if k <= 0 {
		k = 12
	}
	if k > n {
		k = n
	}
	shift := -omega * omega
	var solve func([]float64) []float64
	if p.m2 != nil {
		a := p.m2.Clone()
		for i := 0; i < n; i++ {
			a.Data[i*n+i] -= shift
		}
		lu, err := LUFactor(a)
		if err != nil {
			// Singular shift: −ω² is (numerically) an eigenvalue of M² itself.
			return []float64{omega}, nil
		}
		solve = lu.SolveVec
	} else {
		// (M² − shift·I)⁻¹ = −(shift·I − M²)⁻¹ via the real Woodbury solver.
		rs, err := p.s2.RealShiftSolver(shift)
		if err != nil {
			return []float64{omega}, nil
		}
		solve = func(b []float64) []float64 {
			x := rs.SolveVec(b)
			for i := range x {
				x[i] = -x[i]
			}
			return x
		}
	}
	// Arnoldi on (M² − shift·I)⁻¹ with modified Gram–Schmidt.
	v := make([][]float64, 1, k+1)
	v[0] = make([]float64, n)
	for i := range v[0] {
		v[0][i] = 1 + float64(i%7)/8
	}
	normalize(v[0])
	h := NewMatrix(k+1, k)
	steps := 0
	for j := 0; j < k; j++ {
		w := solve(v[j])
		for i := 0; i <= j; i++ {
			hij := dot(v[i], w)
			h.Set(i, j, hij)
			axpy(w, v[i], -hij)
		}
		nrm := math.Sqrt(dot(w, w))
		h.Set(j+1, j, nrm)
		steps = j + 1
		if nrm < 1e-14 {
			break // invariant subspace found
		}
		for i := range w {
			w[i] /= nrm
		}
		v = append(v, w)
	}
	// Ritz values of the projected operator: eigenvalues θ of H[0:m,0:m]
	// map back to μ = 1/θ + shift.
	hm := NewMatrix(steps, steps)
	for i := 0; i < steps; i++ {
		for j := 0; j < steps; j++ {
			hm.Set(i, j, h.At(i, j))
		}
	}
	theta, err := EigenValues(hm)
	if err != nil {
		return nil, err
	}
	var mus []float64
	for _, th := range theta {
		den := real(th)*real(th) + imag(th)*imag(th)
		if den == 0 {
			continue
		}
		// 1/θ for complex θ.
		mu := complex(real(th)/den, -imag(th)/den) + complex(shift, 0)
		scale := math.Abs(real(mu)) + omega*omega
		if scale == 0 {
			scale = 1
		}
		if real(mu) < 0 && math.Abs(imag(mu)) <= 1e-3*scale {
			mus = append(mus, real(mu))
		}
	}
	sort.Slice(mus, func(a, b int) bool {
		da, db := math.Abs(mus[a]-shift), math.Abs(mus[b]-shift)
		if da != db {
			return da < db
		}
		return mus[a] < mus[b]
	})
	if len(mus) > probeMaxCandidates {
		mus = mus[:probeMaxCandidates]
	}
	out := make([]float64, 0, len(mus))
	for _, mu := range mus {
		w := math.Sqrt(-mu)
		dup := false
		for _, prev := range out {
			if math.Abs(w-prev) <= 1e-9*(1+prev) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, w)
		}
	}
	return out, nil
}

// NearestCrossing probes for a (near-)imaginary eigenvalue of M close to
// jω and returns the best candidate frequency, or ok=false when the
// cluster nearest the shift holds nothing consistent with the imaginary
// axis. See Candidates for the confirmation obligation.
func (p *ImagEigenProbe) NearestCrossing(omega float64, k int) (float64, bool, error) {
	cand, err := p.Candidates(omega, k)
	if err != nil || len(cand) == 0 {
		return 0, false, err
	}
	return cand[0], true, nil
}

func normalize(v []float64) float64 {
	s := math.Sqrt(dot(v, v))
	if s == 0 {
		return 0
	}
	for i := range v {
		v[i] /= s
	}
	return s
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func axpy(y, x []float64, alpha float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}
