package mat

import (
	"errors"
	"math"
)

// ErrNoConvergence is returned when an iterative eigenvalue algorithm fails
// to converge within its iteration budget.
var ErrNoConvergence = errors.New("mat: eigenvalue iteration did not converge")

// Balance applies a diagonal similarity scaling D⁻¹AD in place so that row
// and column norms are roughly equal, improving the accuracy of subsequent
// eigenvalue computations (EISPACK balanc, without permutations). It returns
// the diagonal scaling factors.
func Balance(a *Matrix) []float64 {
	n := a.Rows
	d := make([]float64, n)
	for i := range d {
		d[i] = 1
	}
	const radix = 2.0
	sqrdx := radix * radix
	for done := false; !done; {
		done = true
		for i := 0; i < n; i++ {
			r, c := 0.0, 0.0
			for j := 0; j < n; j++ {
				if j != i {
					c += math.Abs(a.At(j, i))
					r += math.Abs(a.At(i, j))
				}
			}
			if c == 0 || r == 0 {
				continue
			}
			g := r / radix
			f := 1.0
			s := c + r
			for c < g {
				f *= radix
				c *= sqrdx
			}
			g = r * radix
			for c > g {
				f /= radix
				c /= sqrdx
			}
			if (c+r)/f < 0.95*s {
				done = false
				g = 1 / f
				d[i] *= f
				for j := 0; j < n; j++ {
					a.Set(i, j, a.At(i, j)*g)
				}
				for j := 0; j < n; j++ {
					a.Set(j, i, a.At(j, i)*f)
				}
			}
		}
	}
	return d
}

// HessenbergReduce reduces a to upper Hessenberg form in place using
// Householder reflections: H = QᵀAQ. If wantQ is true the orthogonal
// transformation Q is accumulated and returned; otherwise nil is returned.
func HessenbergReduce(a *Matrix, wantQ bool) *Matrix {
	n := a.Rows
	if n != a.Cols {
		panic("mat: HessenbergReduce of non-square matrix")
	}
	var vs [][]float64 // stored reflectors for Q accumulation
	if wantQ {
		vs = make([][]float64, 0, n)
	}
	v := make([]float64, n)
	for k := 0; k < n-2; k++ {
		// Householder on column k, rows k+1..n-1.
		norm := 0.0
		for i := k + 1; i < n; i++ {
			norm = math.Hypot(norm, a.At(i, k))
		}
		if norm == 0 {
			if wantQ {
				vs = append(vs, nil)
			}
			continue
		}
		alpha := norm
		if a.At(k+1, k) > 0 {
			alpha = -norm
		}
		v0 := a.At(k+1, k) - alpha
		for i := range v {
			v[i] = 0
		}
		v[k+1] = 1
		for i := k + 2; i < n; i++ {
			v[i] = a.At(i, k) / v0
		}
		beta := -v0 / alpha
		// A ← (I − β v vᵀ) A
		for c := k; c < n; c++ {
			s := 0.0
			for i := k + 1; i < n; i++ {
				s += v[i] * a.At(i, c)
			}
			s *= beta
			for i := k + 1; i < n; i++ {
				a.Set(i, c, a.At(i, c)-s*v[i])
			}
		}
		// A ← A (I − β v vᵀ)
		for r := 0; r < n; r++ {
			s := 0.0
			for i := k + 1; i < n; i++ {
				s += a.At(r, i) * v[i]
			}
			s *= beta
			for i := k + 1; i < n; i++ {
				a.Set(r, i, a.At(r, i)-s*v[i])
			}
		}
		// Clean the annihilated entries exactly.
		a.Set(k+1, k, alpha)
		for i := k + 2; i < n; i++ {
			a.Set(i, k, 0)
		}
		if wantQ {
			stored := make([]float64, n+1)
			copy(stored[:n], v)
			stored[n] = beta
			vs = append(vs, stored)
		}
	}
	if !wantQ {
		return nil
	}
	// Accumulate Q = H₀H₁… by applying reflectors to the identity from the
	// right (equivalently build Q so that A_original = Q H Qᵀ).
	q := Identity(n)
	for k := 0; k < len(vs); k++ {
		stored := vs[k]
		if stored == nil {
			continue
		}
		beta := stored[n]
		// Q ← Q (I − β v vᵀ)
		for r := 0; r < n; r++ {
			s := 0.0
			for i := k + 1; i < n; i++ {
				s += q.At(r, i) * stored[i]
			}
			s *= beta
			for i := k + 1; i < n; i++ {
				q.Set(r, i, q.At(r, i)-s*stored[i])
			}
		}
	}
	return q
}

// Schur holds a real Schur decomposition A = Q·T·Qᵀ where T is quasi-upper-
// triangular (1×1 blocks for real eigenvalues, 2×2 blocks with complex
// conjugate eigenvalue pairs) and Q is orthogonal.
type Schur struct {
	T *Matrix
	Q *Matrix // nil if not requested
	// Eigenvalues (paired real/imag parts).
	WR, WI []float64
}

// SchurDecompose computes the real Schur form of a square matrix using
// Hessenberg reduction followed by the Francis double-shift QR iteration
// (hqr2-style). If wantQ is false, only T and the eigenvalues are valid.
func SchurDecompose(a *Matrix, wantQ bool) (*Schur, error) {
	h := a.Clone()
	q := HessenbergReduce(h, wantQ)
	if !wantQ {
		q = nil
	}
	wr, wi, err := francisQR(h, q)
	if err != nil {
		return nil, err
	}
	return &Schur{T: h, Q: q, WR: wr, WI: wi}, nil
}

// EigenValues returns the eigenvalues of a general real square matrix as
// complex numbers. The input is not modified. Balancing is applied for
// accuracy.
func EigenValues(a *Matrix) ([]complex128, error) {
	w := a.Clone()
	Balance(w)
	HessenbergReduce(w, false)
	wr, wi, err := francisQR(w, nil)
	if err != nil {
		return nil, err
	}
	out := make([]complex128, len(wr))
	for i := range wr {
		out[i] = complex(wr[i], wi[i])
	}
	return out, nil
}

// francisQR runs the Francis double-shift QR iteration on the upper
// Hessenberg matrix h (in place), reducing it to real Schur form. If v is
// non-nil the transformations are accumulated into it (v ← v·Z). Returns
// eigenvalue real/imaginary parts.
//
// The implementation follows the classical hqr2 algorithm (EISPACK/JAMA):
// 2×2 diagonal blocks with real eigenvalues are rotated into upper
// triangular form, so remaining 2×2 blocks always carry complex pairs.
func francisQR(h *Matrix, v *Matrix) (wr, wi []float64, err error) {
	nn := h.Rows
	wr = make([]float64, nn)
	wi = make([]float64, nn)
	if nn == 0 {
		return wr, wi, nil
	}
	low, high := 0, nn-1
	eps := math.Pow(2, -52)
	exshift := 0.0
	var p, q, r, s, z, w, x, y float64

	// Outer loop over eigenvalue index.
	n := nn - 1
	iter := 0
	totalIter := 0
	maxTotal := 40 * nn
	for n >= low {
		totalIter++
		if totalIter > maxTotal {
			return nil, nil, ErrNoConvergence
		}
		// Look for a single small sub-diagonal element.
		l := n
		for l > low {
			s = math.Abs(h.At(l-1, l-1)) + math.Abs(h.At(l, l))
			if s == 0 {
				s = hessNorm(h, low, high)
			}
			if math.Abs(h.At(l, l-1)) < eps*s {
				break
			}
			l--
		}

		switch {
		case l == n:
			// One root found.
			h.Set(n, n, h.At(n, n)+exshift)
			wr[n] = h.At(n, n)
			wi[n] = 0
			n--
			iter = 0

		case l == n-1:
			// Two roots found.
			w = h.At(n, n-1) * h.At(n-1, n)
			p = (h.At(n-1, n-1) - h.At(n, n)) / 2
			q = p*p + w
			z = math.Sqrt(math.Abs(q))
			h.Set(n, n, h.At(n, n)+exshift)
			h.Set(n-1, n-1, h.At(n-1, n-1)+exshift)
			x = h.At(n, n)
			if q >= 0 {
				// Real pair: rotate the block into triangular form.
				if p >= 0 {
					z = p + z
				} else {
					z = p - z
				}
				wr[n-1] = x + z
				wr[n] = wr[n-1]
				if z != 0 {
					wr[n] = x - w/z
				}
				wi[n-1] = 0
				wi[n] = 0
				x = h.At(n, n-1)
				s = math.Abs(x) + math.Abs(z)
				p = x / s
				q = z / s
				r = math.Sqrt(p*p + q*q)
				p /= r
				q /= r
				for j := n - 1; j < nn; j++ {
					z = h.At(n-1, j)
					h.Set(n-1, j, q*z+p*h.At(n, j))
					h.Set(n, j, q*h.At(n, j)-p*z)
				}
				for i := 0; i <= n; i++ {
					z = h.At(i, n-1)
					h.Set(i, n-1, q*z+p*h.At(i, n))
					h.Set(i, n, q*h.At(i, n)-p*z)
				}
				if v != nil {
					for i := low; i <= high; i++ {
						z = v.At(i, n-1)
						v.Set(i, n-1, q*z+p*v.At(i, n))
						v.Set(i, n, q*v.At(i, n)-p*z)
					}
				}
			} else {
				// Complex pair.
				wr[n-1] = x + p
				wr[n] = x + p
				wi[n-1] = z
				wi[n] = -z
			}
			n -= 2
			iter = 0

		default:
			// No convergence yet: perform a double QR step.
			x = h.At(n, n)
			y = 0.0
			w = 0.0
			y = h.At(n-1, n-1)
			w = h.At(n, n-1) * h.At(n-1, n)

			// Wilkinson's original ad hoc shift.
			if iter == 10 || iter == 20 {
				exshift += x
				for i := low; i <= n; i++ {
					h.Set(i, i, h.At(i, i)-x)
				}
				s = math.Abs(h.At(n, n-1)) + math.Abs(h.At(n-1, n-2))
				x = 0.75 * s
				y = x
				w = -0.4375 * s * s
			}
			// MATLAB-style new ad hoc shift.
			if iter == 30 {
				s = (y - x) / 2
				s = s*s + w
				if s > 0 {
					s = math.Sqrt(s)
					if y < x {
						s = -s
					}
					s = x - w/((y-x)/2+s)
					for i := low; i <= n; i++ {
						h.Set(i, i, h.At(i, i)-s)
					}
					exshift += s
					x = 0.964
					y = x
					w = x
				}
			}
			iter++
			if iter > 60 {
				return nil, nil, ErrNoConvergence
			}

			// Look for two consecutive small sub-diagonal elements.
			m := n - 2
			for m >= l {
				z = h.At(m, m)
				r = x - z
				s = y - z
				p = (r*s-w)/h.At(m+1, m) + h.At(m, m+1)
				q = h.At(m+1, m+1) - z - r - s
				r = h.At(m+2, m+1)
				s = math.Abs(p) + math.Abs(q) + math.Abs(r)
				p /= s
				q /= s
				r /= s
				if m == l {
					break
				}
				if math.Abs(h.At(m, m-1))*(math.Abs(q)+math.Abs(r)) <
					eps*(math.Abs(p)*(math.Abs(h.At(m-1, m-1))+math.Abs(z)+math.Abs(h.At(m+1, m+1)))) {
					break
				}
				m--
			}
			for i := m + 2; i <= n; i++ {
				h.Set(i, i-2, 0)
				if i > m+2 {
					h.Set(i, i-3, 0)
				}
			}

			// Double QR step on rows l..n, columns m..n.
			for k := m; k <= n-1; k++ {
				notlast := k != n-1
				if k != m {
					p = h.At(k, k-1)
					q = h.At(k+1, k-1)
					if notlast {
						r = h.At(k+2, k-1)
					} else {
						r = 0
					}
					x = math.Abs(p) + math.Abs(q) + math.Abs(r)
					if x == 0 {
						continue
					}
					p /= x
					q /= x
					r /= x
				}
				s = math.Sqrt(p*p + q*q + r*r)
				if p < 0 {
					s = -s
				}
				if s != 0 {
					if k != m {
						h.Set(k, k-1, -s*x)
					} else if l != m {
						h.Set(k, k-1, -h.At(k, k-1))
					}
					p += s
					x = p / s
					y = q / s
					z = r / s
					q /= p
					r /= p

					// Row modification.
					for j := k; j < nn; j++ {
						p = h.At(k, j) + q*h.At(k+1, j)
						if notlast {
							p += r * h.At(k+2, j)
							h.Set(k+2, j, h.At(k+2, j)-p*z)
						}
						h.Set(k, j, h.At(k, j)-p*x)
						h.Set(k+1, j, h.At(k+1, j)-p*y)
					}
					// Column modification.
					iMax := n
					if k+3 < iMax {
						iMax = k + 3
					}
					for i := 0; i <= iMax; i++ {
						p = x*h.At(i, k) + y*h.At(i, k+1)
						if notlast {
							p += z * h.At(i, k+2)
							h.Set(i, k+2, h.At(i, k+2)-p*r)
						}
						h.Set(i, k, h.At(i, k)-p)
						h.Set(i, k+1, h.At(i, k+1)-p*q)
					}
					// Accumulate transformations.
					if v != nil {
						for i := low; i <= high; i++ {
							p = x*v.At(i, k) + y*v.At(i, k+1)
							if notlast {
								p += z * v.At(i, k+2)
								v.Set(i, k+2, v.At(i, k+2)-p*r)
							}
							v.Set(i, k, v.At(i, k)-p)
							v.Set(i, k+1, v.At(i, k+1)-p*q)
						}
					}
				}
			}
		}
	}
	return wr, wi, nil
}

func hessNorm(h *Matrix, low, high int) float64 {
	norm := 0.0
	n := h.Rows
	for i := 0; i < n; i++ {
		j0 := i - 1
		if j0 < 0 {
			j0 = 0
		}
		for j := j0; j < n; j++ {
			norm += math.Abs(h.At(i, j))
		}
	}
	_ = low
	_ = high
	return norm
}
