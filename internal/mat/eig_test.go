package mat

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// companionMatrix builds the companion matrix of the monic polynomial with
// the given coefficients: p(x) = xⁿ + c[n-1]x^{n-1} + … + c[0].
func companionMatrix(c []float64) *Matrix {
	n := len(c)
	m := NewMatrix(n, n)
	for i := 1; i < n; i++ {
		m.Set(i, i-1, 1)
	}
	for i := 0; i < n; i++ {
		m.Set(i, n-1, -c[i])
	}
	return m
}

func sortComplex(v []complex128) {
	sort.Slice(v, func(a, b int) bool {
		if real(v[a]) != real(v[b]) {
			return real(v[a]) < real(v[b])
		}
		return imag(v[a]) < imag(v[b])
	})
}

func TestEigenValuesDiagonal(t *testing.T) {
	a := NewMatrixFrom([][]float64{{3, 0, 0}, {0, -1, 0}, {0, 0, 7}})
	ev, err := EigenValues(a)
	if err != nil {
		t.Fatal(err)
	}
	sortComplex(ev)
	want := []complex128{-1, 3, 7}
	for i := range want {
		if cAbs(ev[i]-want[i]) > 1e-10 {
			t.Fatalf("eig %v want %v", ev, want)
		}
	}
}

func TestEigenValuesRotation(t *testing.T) {
	// 2D rotation by θ has eigenvalues e^{±iθ}.
	theta := 0.7
	a := NewMatrixFrom([][]float64{
		{math.Cos(theta), -math.Sin(theta)},
		{math.Sin(theta), math.Cos(theta)},
	})
	ev, err := EigenValues(a)
	if err != nil {
		t.Fatal(err)
	}
	sortComplex(ev)
	want := []complex128{complex(math.Cos(theta), -math.Sin(theta)), complex(math.Cos(theta), math.Sin(theta))}
	for i := range want {
		if cAbs(ev[i]-want[i]) > 1e-10 {
			t.Fatalf("eig %v want %v", ev, want)
		}
	}
}

func TestEigenValuesCompanionKnownRoots(t *testing.T) {
	// p(x) = (x−1)(x−2)(x−3)(x+0.5) expanded:
	// x⁴ −5.5x³ + 8x² −2.5x −3  ⇒ coefficients [c0..c3] = [-3, -2.5, 8, -5.5]... recompute:
	// (x−1)(x−2) = x²−3x+2; (x−3)(x+0.5) = x²−2.5x−1.5
	// product: x⁴ −2.5x³ −1.5x² −3x³ +7.5x² +4.5x +2x² −5x −3
	//        = x⁴ −5.5x³ + 8x² −0.5x −3
	c := []float64{-3, -0.5, 8, -5.5}
	a := companionMatrix(c)
	ev, err := EigenValues(a)
	if err != nil {
		t.Fatal(err)
	}
	sortComplex(ev)
	want := []complex128{-0.5, 1, 2, 3}
	for i := range want {
		if cAbs(ev[i]-want[i]) > 1e-8 {
			t.Fatalf("companion eig %v want %v", ev, want)
		}
	}
}

func TestEigenValuesComplexConjugatePairs(t *testing.T) {
	// Block diag with blocks [[α, β],[−β, α]] has eigenvalues α±iβ.
	a := NewMatrix(4, 4)
	a.Set(0, 0, -1)
	a.Set(0, 1, 5)
	a.Set(1, 0, -5)
	a.Set(1, 1, -1)
	a.Set(2, 2, -2)
	a.Set(2, 3, 10)
	a.Set(3, 2, -10)
	a.Set(3, 3, -2)
	ev, err := EigenValues(a)
	if err != nil {
		t.Fatal(err)
	}
	sortComplex(ev)
	want := []complex128{complex(-2, -10), complex(-2, 10), complex(-1, -5), complex(-1, 5)}
	for i := range want {
		if cAbs(ev[i]-want[i]) > 1e-9 {
			t.Fatalf("eig %v want %v", ev, want)
		}
	}
}

func TestEigenValuesAgainstSymJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	n := 12
	a := randSPD(rng, n)
	evGeneral, err := EigenValues(a)
	if err != nil {
		t.Fatal(err)
	}
	se := SymEigDecompose(a)
	gen := make([]float64, n)
	for i, z := range evGeneral {
		if math.Abs(imag(z)) > 1e-8 {
			t.Fatalf("symmetric matrix produced complex eigenvalue %v", z)
		}
		gen[i] = real(z)
	}
	sort.Float64s(gen)
	for i := range gen {
		if math.Abs(gen[i]-se.Values[i]) > 1e-7*(1+math.Abs(se.Values[i])) {
			t.Fatalf("eig mismatch: francis %v vs jacobi %v", gen, se.Values)
		}
	}
}

func TestSchurReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{1, 2, 3, 5, 10, 17} {
		a := randMatrix(rng, n, n)
		sch, err := SchurDecompose(a, true)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// A == Q·T·Qᵀ
		rec := sch.Q.Mul(sch.T).Mul(sch.Q.T())
		if !rec.Equalish(a, 1e-8*(1+a.FrobNorm())) {
			t.Fatalf("n=%d: Schur reconstruction failed", n)
		}
		// Q orthogonal.
		if !sch.Q.T().Mul(sch.Q).Equalish(Identity(n), 1e-10) {
			t.Fatalf("n=%d: Q not orthogonal", n)
		}
		// T quasi-upper-triangular.
		if !IsQuasiUpperTriangular(sch.T, 1e-8*(1+a.FrobNorm())) {
			t.Fatalf("n=%d: T not quasi-triangular:\n%v", n, sch.T)
		}
	}
}

func TestSchur2x2BlocksAreComplexPairs(t *testing.T) {
	// Any remaining 2×2 diagonal block must have complex eigenvalues
	// (real pairs are rotated to triangular form).
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(10)
		a := randMatrix(rng, n, n)
		sch, err := SchurDecompose(a, false)
		if err != nil {
			t.Fatal(err)
		}
		tol := 1e-9 * (1 + sch.T.MaxAbs())
		for _, blk := range schurBlocks(sch.T, tol) {
			if blk[1] == 2 {
				i := blk[0]
				p := (sch.T.At(i, i) - sch.T.At(i+1, i+1)) / 2
				disc := p*p + sch.T.At(i+1, i)*sch.T.At(i, i+1)
				if disc >= 0 {
					t.Fatalf("2×2 block with real eigenvalues left in T (disc=%v)", disc)
				}
			}
		}
	}
}

func TestEigenValuesTraceDetInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(10)
		a := randMatrix(rng, n, n)
		ev, err := EigenValues(a)
		if err != nil {
			t.Fatal(err)
		}
		var sum complex128
		prod := complex(1, 0)
		for _, z := range ev {
			sum += z
			prod *= z
		}
		if math.Abs(real(sum)-a.Trace()) > 1e-8*(1+math.Abs(a.Trace())) || math.Abs(imag(sum)) > 1e-8 {
			t.Fatalf("Σλ = %v vs trace %v", sum, a.Trace())
		}
		f, err := LUFactor(a)
		if err != nil {
			continue
		}
		det := f.Det()
		if cAbs(prod-complex(det, 0)) > 1e-6*(1+math.Abs(det)) {
			t.Fatalf("Πλ = %v vs det %v", prod, det)
		}
	}
}

func TestSymEigDecompose(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	n := 10
	a := randSPD(rng, n)
	se := SymEigDecompose(a)
	// A·V == V·diag(λ)
	av := a.Mul(se.V)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			want := se.V.At(i, j) * se.Values[j]
			if math.Abs(av.At(i, j)-want) > 1e-8*(1+math.Abs(want)) {
				t.Fatalf("eigpair %d fails", j)
			}
		}
	}
	// SPD ⇒ all eigenvalues > 0.
	for _, v := range se.Values {
		if v <= 0 {
			t.Fatalf("SPD matrix has eigenvalue %v", v)
		}
	}
	// V orthogonal.
	if !se.V.T().Mul(se.V).Equalish(Identity(n), 1e-10) {
		t.Fatalf("V not orthogonal")
	}
}

func TestHermEigDecompose(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	n := 8
	b := randCMatrix(rng, n, n)
	a := b.H().Mul(b) // Hermitian PSD
	he := HermEigDecompose(a)
	av := a.Mul(he.V)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			want := he.V.At(i, j) * complex(he.Values[j], 0)
			if cAbs(av.At(i, j)-want) > 1e-8*(1+cAbs(want)) {
				t.Fatalf("herm eigpair %d fails", j)
			}
		}
	}
	for _, v := range he.Values {
		if v < -1e-10 {
			t.Fatalf("PSD matrix has negative eigenvalue %v", v)
		}
	}
	if !he.V.H().Mul(he.V).Equalish(CIdentity(n), 1e-10) {
		t.Fatalf("V not unitary")
	}
	// Hermitian eigenvalues equal squared singular values of b.
	sv := SingularValues(b)
	sq := make([]float64, n)
	for i, s := range sv {
		sq[i] = s * s
	}
	sort.Float64s(sq)
	for i := range sq {
		if math.Abs(sq[i]-he.Values[i]) > 1e-8*(1+sq[i]) {
			t.Fatalf("eig(BᴴB) != σ(B)²: %v vs %v", he.Values, sq)
		}
	}
}

func TestBalancePreservesEigenvalues(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	a := randMatrix(rng, 6, 6)
	// Badly scale it.
	for j := 0; j < 6; j++ {
		scale := math.Pow(10, float64(j-3))
		for i := 0; i < 6; i++ {
			a.Set(i, j, a.At(i, j)*scale)
			a.Set(j, i, a.At(j, i)/scale)
		}
	}
	evA, err := EigenValues(a)
	if err != nil {
		t.Fatal(err)
	}
	w := a.Clone()
	Balance(w)
	evW, err := EigenValues(w)
	if err != nil {
		t.Fatal(err)
	}
	sortComplex(evA)
	sortComplex(evW)
	for i := range evA {
		if cAbs(evA[i]-evW[i]) > 1e-6*(1+cAbs(evA[i])) {
			t.Fatalf("balance changed eigenvalues: %v vs %v", evA, evW)
		}
	}
}

func BenchmarkEigenValues100(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	a := randMatrix(rng, 100, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EigenValues(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchur50WithQ(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	a := randMatrix(rng, 50, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SchurDecompose(a, true); err != nil {
			b.Fatal(err)
		}
	}
}
