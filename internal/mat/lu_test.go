package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUSolveResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for n := 1; n <= 20; n += 3 {
		a := randMatrix(rng, n, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveLin(a, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		r := a.MulVec(x)
		for i := range r {
			if math.Abs(r[i]-b[i]) > 1e-9*(1+Norm2(b)) {
				t.Fatalf("n=%d residual too large at %d: %v vs %v", n, i, r[i], b[i])
			}
		}
	}
}

func TestLUInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randMatrix(rng, 8, 8)
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	eye := a.Mul(inv)
	if !eye.Equalish(Identity(8), 1e-9) {
		t.Fatalf("A·A⁻¹ != I:\n%v", eye)
	}
}

func TestLUDet(t *testing.T) {
	a := NewMatrixFrom([][]float64{{2, 0}, {0, 3}})
	f, err := LUFactor(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()-6) > 1e-12 {
		t.Fatalf("det = %v want 6", f.Det())
	}
	// Permutation flips the sign.
	b := NewMatrixFrom([][]float64{{0, 1}, {1, 0}})
	fb, err := LUFactor(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fb.Det()+1) > 1e-12 {
		t.Fatalf("det(perm) = %v want -1", fb.Det())
	}
}

func TestLUSingular(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {2, 4}})
	if _, err := LUFactor(a); err == nil {
		t.Fatalf("expected ErrSingular")
	}
}

func TestLUSolveMatrixRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randMatrix(rng, 6, 6)
	b := randMatrix(rng, 6, 3)
	f, err := LUFactor(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve(b)
	if !a.Mul(x).Equalish(b, 1e-9) {
		t.Fatalf("matrix RHS solve residual")
	}
}

func TestLUPropertySolve(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := randMatrix(rng, n, n)
		// Make well conditioned by adding n·I.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := a.MulVec(x)
		got, err := SolveLin(a, b)
		if err != nil {
			return false
		}
		for i := range got {
			if math.Abs(got[i]-x[i]) > 1e-8*(1+math.Abs(x[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCLUSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for n := 1; n <= 16; n += 5 {
		a := randCMatrix(rng, n, n)
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		b := a.MulVec(x)
		got, err := CSolveLin(a, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range got {
			if cAbs(got[i]-x[i]) > 1e-8*(1+cAbs(x[i])) {
				t.Fatalf("n=%d mismatch at %d: %v vs %v", n, i, got[i], x[i])
			}
		}
	}
}

func TestCInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randCMatrix(rng, 7, 7)
	inv, err := CInverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Mul(inv).Equalish(CIdentity(7), 1e-9) {
		t.Fatalf("A·A⁻¹ != I (complex)")
	}
}

func TestCLUSingular(t *testing.T) {
	a := NewCMatrixFrom([][]complex128{{1 + 1i, 2 + 2i}, {2 + 2i, 4 + 4i}})
	if _, err := CLUFactor(a); err == nil {
		t.Fatalf("expected singular error")
	}
}

func BenchmarkLUFactor50(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randMatrix(rng, 50, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LUFactor(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCLUFactor100(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := randCMatrix(rng, 100, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CLUFactor(a); err != nil {
			b.Fatal(err)
		}
	}
}
