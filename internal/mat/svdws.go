package mat

import (
	"math"
	"math/cmplx"
)

// CSVDWorkspace holds the reusable buffers of the one-sided Jacobi SVD
// kernels: the packed column-major working copy, the right-rotation
// accumulator, and the output matrices. A workspace amortizes every
// allocation of CSVDecomposeInto / SingularValuesInto across calls — after
// the first call at a given size the kernels are allocation-free.
//
// Ownership: the CSVD returned by CSVDecomposeInto points into
// workspace-owned storage and is valid only until the next call on the
// same workspace. A workspace is NOT safe for concurrent use; give each
// worker its own (see the per-worker pools in internal/passivity).
type CSVDWorkspace struct {
	w   []complex128 // packed column-major working copy (m×n panels)
	v   []complex128 // packed column-major right rotations (n×n)
	s   []float64    // unsorted singular values
	ss  []float64    // singular values in descending order
	idx []int        // descending sort permutation
	u   *CMatrix     // output U, reused across calls
	vm  *CMatrix     // output V, reused across calls
	out CSVD         // returned header, reused across calls
}

func growC(buf []complex128, n int) []complex128 {
	if cap(buf) < n {
		return make([]complex128, n)
	}
	return buf[:n]
}

func growF(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func growI(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// reuseCMatrix resizes m to r×c reusing its backing array when possible,
// zero-filling the result.
func reuseCMatrix(m *CMatrix, r, c int) *CMatrix {
	if m == nil || cap(m.Data) < r*c {
		return NewCMatrix(r, c)
	}
	m.Rows, m.Cols = r, c
	m.Data = m.Data[:r*c]
	for i := range m.Data {
		m.Data[i] = 0
	}
	return m
}

// packColumns copies a into dst as packed column-major panels (column j at
// dst[j*m:(j+1)*m]). With conj=true it packs the conjugate transpose
// instead, reading a's rows contiguously.
func packColumns(dst []complex128, a *CMatrix, conj bool) {
	if conj {
		// Column j of aᴴ (length a.Cols) is the conjugated row j of a.
		for j := 0; j < a.Rows; j++ {
			row := a.Data[j*a.Cols : (j+1)*a.Cols]
			col := dst[j*a.Cols : (j+1)*a.Cols]
			for i, v := range row {
				col[i] = cmplx.Conj(v)
			}
		}
		return
	}
	m, n := a.Rows, a.Cols
	for j := 0; j < n; j++ {
		col := dst[j*m : (j+1)*m]
		for i := 0; i < m; i++ {
			col[i] = a.Data[i*n+j]
		}
	}
}

// jacobiSweepsPacked runs the one-sided Jacobi iteration on the packed
// column-major working copy w (m×n). Processing column pairs on packed
// panels keeps every Gram accumulation and rotation on contiguous memory —
// the row-major formulation walks both columns with stride n, which at
// P ≳ 16 ports misses cache on every element. v, when non-nil, must hold
// the n×n identity in packed column-major form and accumulates the right
// rotations. The pair order and per-pair arithmetic match the historical
// strided kernel exactly, so results are bitwise reproducible; tiling the
// pair loop itself would reorder the rotations and change the rounding.
func jacobiSweepsPacked(w, v []complex128, m, n int) {
	const tol = 1e-14
	for sweep := 0; sweep < 60; sweep++ {
		off := 0
		for p := 0; p < n-1; p++ {
			wp := w[p*m : (p+1)*m]
			for q := p + 1; q < n; q++ {
				wq := w[q*m : (q+1)*m]
				// Gram entries of columns p,q.
				var app, aqq float64
				var apq complex128
				for i, cp := range wp {
					cq := wq[i]
					app += real(cp)*real(cp) + imag(cp)*imag(cp)
					aqq += real(cq)*real(cq) + imag(cq)*imag(cq)
					apq += cmplx.Conj(cp) * cq
				}
				mag := cmplx.Abs(apq)
				if mag <= tol*math.Sqrt(app*aqq) || mag == 0 {
					continue
				}
				off++
				// Phase so the effective off-diagonal entry is real, then a
				// real Jacobi rotation diagonalizing [[app,mag],[mag,aqq]].
				alpha := apq / complex(mag, 0)
				tau := (aqq - app) / (2 * mag)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				cs := 1 / math.Sqrt(1+t*t)
				sn := cs * t
				ca := complex(sn, 0) * cmplx.Conj(alpha)
				cb := complex(sn, 0) * alpha
				ccs := complex(cs, 0)
				for i, cp := range wp {
					cq := wq[i]
					wp[i] = ccs*cp - ca*cq
					wq[i] = cb*cp + ccs*cq
				}
				if v != nil {
					vp := v[p*n : (p+1)*n]
					vq := v[q*n : (q+1)*n]
					for i, cp := range vp {
						cq := vq[i]
						vp[i] = ccs*cp - ca*cq
						vq[i] = cb*cp + ccs*cq
					}
				}
			}
		}
		if off == 0 {
			break
		}
	}
}

// CSVDecomposeInto computes the thin SVD of a like CSVDecompose, reusing
// the workspace buffers. The returned CSVD points into workspace-owned
// storage: it is valid until the next CSVDecomposeInto / SingularValuesInto
// call on ws. After one call at a given size, subsequent calls perform no
// allocations.
func CSVDecomposeInto(ws *CSVDWorkspace, a *CMatrix) *CSVD {
	m, n := a.Rows, a.Cols
	swap := false
	if m < n {
		m, n = n, m
		swap = true
	}
	ws.w = growC(ws.w, m*n)
	packColumns(ws.w, a, swap)
	ws.v = growC(ws.v, n*n)
	for i := range ws.v {
		ws.v[i] = 0
	}
	for j := 0; j < n; j++ {
		ws.v[j*n+j] = 1
	}
	jacobiSweepsPacked(ws.w, ws.v, m, n)

	// Singular values and descending order (insertion sort keeps this
	// allocation-free; port counts are small).
	ws.s = growF(ws.s, n)
	for j := 0; j < n; j++ {
		col := ws.w[j*m : (j+1)*m]
		norm := 0.0
		for _, c := range col {
			norm += real(c)*real(c) + imag(c)*imag(c)
		}
		ws.s[j] = math.Sqrt(norm)
	}
	ws.idx = growI(ws.idx, n)
	for i := range ws.idx {
		ws.idx[i] = i
	}
	for i := 1; i < n; i++ {
		j := ws.idx[i]
		k := i - 1
		for k >= 0 && ws.s[ws.idx[k]] < ws.s[j] {
			ws.idx[k+1] = ws.idx[k]
			k--
		}
		ws.idx[k+1] = j
	}

	// Normalized left vectors and sorted outputs, written directly from the
	// packed panels.
	ws.u = reuseCMatrix(ws.u, m, n)
	ws.vm = reuseCMatrix(ws.vm, n, n)
	ws.ss = growF(ws.ss, n)
	us, vs := ws.u, ws.vm
	for newj, oldj := range ws.idx[:n] {
		norm := ws.s[oldj]
		ws.ss[newj] = norm
		col := ws.w[oldj*m : (oldj+1)*m]
		if norm > 0 {
			inv := complex(1/norm, 0)
			for i := 0; i < m; i++ {
				us.Data[i*n+newj] = col[i] * inv
			}
		} else {
			// Zero singular value: leave the U column zero except a unit
			// pivot; callers that need a full basis re-orthogonalize.
			us.Data[(oldj%m)*n+newj] = 1
		}
		vcol := ws.v[oldj*n : (oldj+1)*n]
		for i := 0; i < n; i++ {
			vs.Data[i*n+newj] = vcol[i]
		}
	}
	ws.out.S = ws.ss[:n]
	if swap {
		ws.out.U, ws.out.V = vs, us
	} else {
		ws.out.U, ws.out.V = us, vs
	}
	return &ws.out
}

// SingularValuesInto computes the singular values of a in descending order
// without accumulating singular vectors, appending into dst (which is
// truncated first). With a warmed workspace and sufficient dst capacity the
// call performs no allocations — this is the per-frequency kernel of the
// passivity sweeps.
func SingularValuesInto(ws *CSVDWorkspace, a *CMatrix, dst []float64) []float64 {
	m, n := a.Rows, a.Cols
	swap := false
	if m < n {
		m, n = n, m
		swap = true
	}
	ws.w = growC(ws.w, m*n)
	packColumns(ws.w, a, swap)
	jacobiSweepsPacked(ws.w, nil, m, n)
	dst = dst[:0]
	for j := 0; j < n; j++ {
		col := ws.w[j*m : (j+1)*m]
		norm := 0.0
		for _, c := range col {
			norm += real(c)*real(c) + imag(c)*imag(c)
		}
		dst = append(dst, math.Sqrt(norm))
	}
	// Insertion sort, descending.
	for i := 1; i < len(dst); i++ {
		v := dst[i]
		k := i - 1
		for k >= 0 && dst[k] < v {
			dst[k+1] = dst[k]
			k--
		}
		dst[k+1] = v
	}
	return dst
}
