package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randStable returns a random Hurwitz-stable matrix (eigenvalues in the open
// left half plane) by shifting a random matrix.
func randStable(rng *rand.Rand, n int) *Matrix {
	a := randMatrix(rng, n, n)
	// Shift left by slightly more than a norm bound on the spectral abscissa.
	shift := a.FrobNorm() + 0.5
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)-shift)
	}
	return a
}

// blockDiagStable builds the kind of matrix pole-residue realizations
// produce: 1×1 blocks for real poles and 2×2 [[α,β],[−β,α]] blocks for
// complex pairs, all with α<0.
func blockDiagStable(rng *rand.Rand, nReal, nPairs int) *Matrix {
	n := nReal + 2*nPairs
	a := NewMatrix(n, n)
	k := 0
	for i := 0; i < nReal; i++ {
		a.Set(k, k, -0.1-5*rng.Float64())
		k++
	}
	for i := 0; i < nPairs; i++ {
		al := -0.1 - 5*rng.Float64()
		be := 0.5 + 10*rng.Float64()
		a.Set(k, k, al)
		a.Set(k, k+1, be)
		a.Set(k+1, k, -be)
		a.Set(k+1, k+1, al)
		k += 2
	}
	return a
}

func lyapResidual(a, x, c *Matrix) float64 {
	r := a.Mul(x).Add(x.Mul(a.T())).Add(c)
	return r.MaxAbs()
}

func TestLyapQuasiTriBlockDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	a := blockDiagStable(rng, 3, 4) // 11×11
	b := randMatrix(rng, 11, 2)
	c := b.Mul(b.T())
	x, err := LyapQuasiTri(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if res := lyapResidual(a, x, c); res > 1e-9*(1+c.MaxAbs()) {
		t.Fatalf("residual %v", res)
	}
}

func TestLyapunovGeneral(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, n := range []int{1, 2, 5, 12} {
		a := randStable(rng, n)
		b := randMatrix(rng, n, 3)
		c := b.Mul(b.T())
		x, err := Lyapunov(a, c)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		scale := 1 + c.MaxAbs() + x.MaxAbs()*a.MaxAbs()
		if res := lyapResidual(a, x, c); res > 1e-8*scale {
			t.Fatalf("n=%d residual %v", n, res)
		}
	}
}

func TestLyapunovUpperBlockTriangular(t *testing.T) {
	// The weighted-Gramian case: A = [[A1, B12],[0, A2]] with quasi-
	// triangular diagonal blocks must take the fast path and still solve.
	rng := rand.New(rand.NewSource(52))
	a1 := blockDiagStable(rng, 1, 2) // 5×5
	a2 := blockDiagStable(rng, 2, 1) // 4×4
	n := 9
	a := NewMatrix(n, n)
	a.SetSlice(0, 0, a1)
	a.SetSlice(5, 5, a2)
	cpl := randMatrix(rng, 5, 4)
	a.SetSlice(0, 5, cpl)
	if !IsQuasiUpperTriangular(a, 1e-14) {
		t.Fatalf("test matrix should be quasi-triangular")
	}
	b := randMatrix(rng, n, 1)
	c := b.Mul(b.T())
	x, err := Lyapunov(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if res := lyapResidual(a, x, c); res > 1e-9*(1+c.MaxAbs()+x.MaxAbs()*a.MaxAbs()) {
		t.Fatalf("residual %v", res)
	}
}

func TestControllabilityGramianSPD(t *testing.T) {
	// For a stable, controllable system the Gramian is SPD; check via
	// Cholesky and via quadratic forms.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nReal := rng.Intn(3)
		nPairs := 1 + rng.Intn(3)
		a := blockDiagStable(rng, nReal, nPairs)
		n := a.Rows
		b := NewMatrix(n, 1)
		for i := 0; i < n; i++ {
			b.Set(i, 0, 1+rng.Float64()) // nonzero in every mode ⇒ controllable
		}
		p, err := ControllabilityGramian(a, b)
		if err != nil {
			return false
		}
		_, err = CholFactor(p)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGramianMatchesIntegralDefinition(t *testing.T) {
	// P = ∫₀^∞ e^{At} B Bᵀ e^{Aᵀt} dt, approximated by dense quadrature for
	// a small very-stable system.
	a := NewMatrixFrom([][]float64{{-1, 0}, {0, -3}})
	b := NewMatrixFrom([][]float64{{1}, {2}})
	p, err := ControllabilityGramian(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Closed form: P_ij = B_i·B_j / −(λ_i + λ_j)
	want := NewMatrixFrom([][]float64{
		{1.0 / 2.0, 2.0 / 4.0},
		{2.0 / 4.0, 4.0 / 6.0},
	})
	if !p.Equalish(want, 1e-10) {
		t.Fatalf("Gramian:\n%v\nwant\n%v", p, want)
	}
}

func TestObservabilityGramian(t *testing.T) {
	a := NewMatrixFrom([][]float64{{-2, 1}, {0, -1}})
	c := NewMatrixFrom([][]float64{{1, 1}})
	q, err := ObservabilityGramian(a, c)
	if err != nil {
		t.Fatal(err)
	}
	// Residual of AᵀQ + QA + CᵀC = 0.
	r := a.T().Mul(q).Add(q.Mul(a)).Add(c.T().Mul(c))
	if r.MaxAbs() > 1e-10 {
		t.Fatalf("observability residual %v", r.MaxAbs())
	}
}

func TestLyapunovUnstableFails(t *testing.T) {
	// λ_i + λ_j = 0 makes the equation singular: A = diag(1, -1).
	a := NewMatrixFrom([][]float64{{1, 0}, {0, -1}})
	c := Identity(2)
	if _, err := Lyapunov(a, c); err == nil {
		t.Fatalf("expected singular Lyapunov failure")
	}
}

func TestIsQuasiUpperTriangular(t *testing.T) {
	a := NewMatrixFrom([][]float64{
		{1, 2, 3},
		{4, 5, 6},
		{0, 0, 7},
	})
	if !IsQuasiUpperTriangular(a, 1e-14) {
		t.Fatalf("should be quasi-triangular")
	}
	b := NewMatrixFrom([][]float64{
		{1, 2, 3},
		{4, 5, 6},
		{0, 4, 7},
	})
	if IsQuasiUpperTriangular(b, 1e-14) {
		t.Fatalf("consecutive subdiagonals should fail")
	}
	c := NewMatrixFrom([][]float64{
		{1, 2},
		{3, 4},
	})
	if !IsQuasiUpperTriangular(c, 1e-14) {
		t.Fatalf("2×2 full block is quasi-triangular")
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	p := randSPD(rng, 9)
	ch, err := CholFactor(p)
	if err != nil {
		t.Fatal(err)
	}
	// L·Lᵀ == P
	l := ch.L()
	if !l.Mul(l.T()).Equalish(p, 1e-9*(1+p.MaxAbs())) {
		t.Fatalf("LLᵀ != P")
	}
	b := make([]float64, 9)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := ch.SolveVec(b)
	r := p.MulVec(x)
	for i := range r {
		if math.Abs(r[i]-b[i]) > 1e-8*(1+math.Abs(b[i])) {
			t.Fatalf("chol solve residual")
		}
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, −1
	if _, err := CholFactor(a); err == nil {
		t.Fatalf("expected ErrNotPD")
	}
	// Regularized version must succeed with some shift.
	_, shift, err := CholFactorRegularized(a)
	if err != nil {
		t.Fatal(err)
	}
	if shift < 1 { // needs at least +1 to flip the −1 eigenvalue
		t.Fatalf("shift %v too small", shift)
	}
}

func BenchmarkLyapQuasiTri20(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	a := blockDiagStable(rng, 4, 8) // 20×20
	bb := randMatrix(rng, 20, 1)
	c := bb.Mul(bb.T())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LyapQuasiTri(a, c); err != nil {
			b.Fatal(err)
		}
	}
}

func TestObservabilityGramianFastPathMatchesGeneral(t *testing.T) {
	// Quasi-upper-triangular A exercises the flip180 fast path; compare
	// against the residual definition AᵀQ + QA + CᵀC = 0 and against a
	// dense (rotated) A that takes the Schur path.
	rng := rand.New(rand.NewSource(81))
	a := blockDiagStable(rng, 3, 3) // 9 states, quasi-triangular
	c := randMatrix(rng, 2, 9)
	q, err := ObservabilityGramian(a, c)
	if err != nil {
		t.Fatal(err)
	}
	res := a.T().Mul(q).Add(q.Mul(a)).Add(c.T().Mul(c))
	if res.MaxAbs() > 1e-9*(1+q.MaxAbs()) {
		t.Fatalf("fast-path residual %g", res.MaxAbs())
	}
	// Rotate the basis with a random orthogonal-ish transform to destroy
	// the structure: Gramian must transform contravariantly.
	m := randMatrix(rng, 9, 9)
	qr := QRFactor(m)
	qq := qr.R() // any invertible T works; use R for simplicity
	tinv, err := Inverse(qq)
	if err != nil {
		t.Fatal(err)
	}
	a2 := tinv.Mul(a.Mul(qq))
	c2 := c.Mul(qq)
	q2, err := ObservabilityGramian(a2, c2)
	if err != nil {
		t.Fatal(err)
	}
	want := qq.T().Mul(q).Mul(qq)
	if !q2.Equalish(want, 1e-6*(1+want.MaxAbs())) {
		t.Fatal("general path disagrees with transformed fast-path Gramian")
	}
}

func TestFlip180Involution(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	m := randMatrix(rng, 5, 7)
	if !flip180(flip180(m)).Equalish(m, 0) {
		t.Fatal("flip180 must be an involution")
	}
	if flip180(m).At(0, 0) != m.At(4, 6) {
		t.Fatal("flip180 corner mapping wrong")
	}
}
