package pdn

import (
	"fmt"
	"math/rand"

	"repro/internal/mat"
)

// MCOptions configures the Monte-Carlo sensitivity estimator.
type MCOptions struct {
	// Sigma is the standard deviation of the element perturbations
	// (default 1e-6, small enough for the first-order regime).
	Sigma float64
	// Trials is the number of random perturbations per frequency
	// (default 64).
	Trials int
	// Seed makes the estimator deterministic (default 1).
	Seed int64
}

// SensitivityMC estimates Ξ(ω) by direct perturbation analysis, the
// defining experiment of eq. (5): every scattering entry is perturbed by an
// independent zero-mean Gaussian of deviation σ, the loaded Z_PDN is
// recomputed, and E{|ΔZ_PDN|}/σ is averaged over trials. It is the
// (slow, unbiased) reference against which the closed-form SensitivityAt is
// validated; both agree up to the constant E{|ξ|} of the standardized
// perturbation combination, which cancels in the weight normalization.
func SensitivityMC(omega []float64, samples []*mat.CMatrix, r0 float64, load *Load, opts MCOptions) ([]float64, error) {
	if len(omega) != len(samples) || len(samples) == 0 {
		return nil, ErrDimension
	}
	if err := load.Validate(samples[0].Rows); err != nil {
		return nil, err
	}
	sigma := opts.Sigma
	if sigma <= 0 {
		sigma = 1e-6
	}
	trials := opts.Trials
	if trials <= 0 {
		trials = 64
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, len(omega))
	for k, w := range omega {
		z0, err := TargetImpedanceAt(samples[k], r0, w, load)
		if err != nil {
			return nil, fmt.Errorf("pdn: MC baseline at ω=%g: %w", w, err)
		}
		sum := 0.0
		pert := samples[k].Clone()
		for t := 0; t < trials; t++ {
			copy(pert.Data, samples[k].Data)
			for i := range pert.Data {
				pert.Data[i] += complex(sigma*rng.NormFloat64(), sigma*rng.NormFloat64())
			}
			z, err := TargetImpedanceAt(pert, r0, w, load)
			if err != nil {
				return nil, fmt.Errorf("pdn: MC trial at ω=%g: %w", w, err)
			}
			sum += absOrTiny(z - z0)
		}
		out[k] = sum / (float64(trials) * sigma)
	}
	return out, nil
}
