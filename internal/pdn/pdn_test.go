package pdn

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/mat"
)

func TestTerminationAdmittances(t *testing.T) {
	if (Open{}).Y(1e6) != 0 {
		t.Fatalf("open must have zero admittance")
	}
	if y := (Resistor{R: 4}).Y(0); y != 0.25 {
		t.Fatalf("resistor Y = %v", y)
	}
	// Series RLC at its resonance ω = 1/√(LC) is purely resistive.
	d := Decap(100e-9, 0.02, 0.6e-9)
	w0 := 1 / math.Sqrt(d.L*d.C)
	y := d.Y(w0)
	if math.Abs(real(y)-1/0.02) > 1e-6/0.02 || math.Abs(imag(y)) > 1e-6 {
		t.Fatalf("decap at resonance: Y=%v want %v", y, 1/0.02)
	}
	// Series C blocks DC.
	if d.Y(0) != 0 {
		t.Fatalf("series capacitor must block DC")
	}
	// VRM RL passes DC with Y = 1/R.
	v := VRM(1e-3, 10e-9)
	if math.Abs(real(v.Y(0))-1000) > 1e-9 {
		t.Fatalf("VRM DC admittance %v", v.Y(0))
	}
	// Short is a huge conductance.
	if real((Short{}).Y(1)) < 1e7 {
		t.Fatalf("short admittance too small")
	}
}

// oneportS returns the scattering of a simple shunt impedance z on R0.
func oneportS(z complex128, r0 float64) *mat.CMatrix {
	s := mat.NewCMatrix(1, 1)
	s.Set(0, 0, (z-complex(r0, 0))/(z+complex(r0, 0)))
	return s
}

func TestTargetImpedanceParallelResistors(t *testing.T) {
	// PDN = 5Ω to ground; load = 20Ω; J = 1A ⇒ Z_PDN = 5‖20 = 4Ω.
	s := oneportS(5, 50)
	load := &Load{Terms: []Termination{Resistor{R: 20}}, J: []complex128{1}, ObsPort: 0}
	z, err := TargetImpedanceAt(s, 50, 1e6, load)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(z-4) > 1e-9 {
		t.Fatalf("Z = %v want 4", z)
	}
}

func TestTargetImpedanceOpenLoad(t *testing.T) {
	// Open load returns the raw network impedance.
	s := oneportS(complex(3, 7), 50)
	load := &Load{Terms: []Termination{Open{}}, J: []complex128{1}, ObsPort: 0}
	z, err := TargetImpedanceAt(s, 50, 1e6, load)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(z-complex(3, 7)) > 1e-9 {
		t.Fatalf("Z = %v want 3+7i", z)
	}
}

func TestTargetImpedanceTwoPort(t *testing.T) {
	// Two-port: series impedance zs between port 1 and port 2, each port
	// also shunted by zp to ground. Load port 2 with RL, inject at port 2,
	// observe port 1 — verified against the direct nodal solution.
	r0 := 50.0
	zs := complex(2, 5)
	zp := complex(100, -30)
	// Build Z-parameters of the PI network: port impedances with other
	// port open.
	// Y-params of PI: Y11 = 1/zp + 1/zs, Y12 = −1/zs, etc.
	y := mat.NewCMatrix(2, 2)
	y.Set(0, 0, 1/zp+1/zs)
	y.Set(0, 1, -1/zs)
	y.Set(1, 0, -1/zs)
	y.Set(1, 1, 1/zp+1/zs)
	z, err := mat.CInverse(y)
	if err != nil {
		t.Fatal(err)
	}
	// S = (Z − R0)(Z + R0)⁻¹.
	num := z.Clone()
	den := z.Clone()
	for i := 0; i < 2; i++ {
		num.Set(i, i, num.At(i, i)-complex(r0, 0))
		den.Set(i, i, den.At(i, i)+complex(r0, 0))
	}
	deninv, err := mat.CInverse(den)
	if err != nil {
		t.Fatal(err)
	}
	s := num.Mul(deninv)

	rl := 25.0
	load := &Load{
		Terms:   []Termination{Open{}, Resistor{R: rl}},
		J:       []complex128{0, 1},
		ObsPort: 0,
	}
	got, err := TargetImpedanceAt(s, r0, 1e6, load)
	if err != nil {
		t.Fatal(err)
	}
	// Direct: with J=1A into port 2 through load Y_L: nodal equations
	// (Y + Y_L)V = J.
	yl := mat.NewCMatrix(2, 2)
	yl.Set(1, 1, complex(1/rl, 0))
	sys := y.Add(yl)
	v, err := mat.CSolveLin(sys, []complex128{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(got-v[0]) > 1e-9*(1+cmplx.Abs(v[0])) {
		t.Fatalf("Z_PDN = %v want %v", got, v[0])
	}
}

func TestSensitivityMatchesFiniteDifference(t *testing.T) {
	// The closed-form ‖G‖_F must match element-wise finite differences of
	// Z_PDN with respect to every S entry.
	r0 := 50.0
	s := mat.NewCMatrixFrom([][]complex128{
		{complex(0.9, 0.05), complex(0.08, -0.02)},
		{complex(0.08, -0.02), complex(0.85, 0.1)},
	})
	load := &Load{
		Terms:   []Termination{DieRC(0.2, 10e-9), Decap(1e-6, 0.01, 1e-9)},
		J:       []complex128{1, 0},
		ObsPort: 0,
	}
	omega := 2 * math.Pi * 1e7
	xi, err := SensitivityAt(s, r0, omega, load)
	if err != nil {
		t.Fatal(err)
	}
	z0, err := TargetImpedanceAt(s, r0, omega, load)
	if err != nil {
		t.Fatal(err)
	}
	h := 1e-8
	frob := 0.0
	for p := 0; p < 2; p++ {
		for q := 0; q < 2; q++ {
			sp := s.Clone()
			sp.Set(p, q, sp.At(p, q)+complex(h, 0))
			zr, err := TargetImpedanceAt(sp, r0, omega, load)
			if err != nil {
				t.Fatal(err)
			}
			g := (zr - z0) / complex(h, 0)
			frob += real(g)*real(g) + imag(g)*imag(g)
		}
	}
	frob = math.Sqrt(frob)
	if math.Abs(frob-xi)/xi > 1e-4 {
		t.Fatalf("finite difference ‖G‖=%v vs closed form Ξ=%v", frob, xi)
	}
}

func TestSensitivityMCMatchesAnalyticShape(t *testing.T) {
	// MC estimator with circular complex perturbations satisfies
	// E|ΔZ|/σ = √(π/2)·Ξ; the ratio must be constant across frequencies.
	r0 := 50.0
	samples := []*mat.CMatrix{}
	omegas := []float64{2 * math.Pi * 1e5, 2 * math.Pi * 1e7, 2 * math.Pi * 1e9}
	for i, w := range omegas {
		_ = w
		s := mat.NewCMatrixFrom([][]complex128{
			{complex(0.9-0.2*float64(i), 0.05), complex(0.05, -0.01*float64(i+1))},
			{complex(0.05, -0.01*float64(i+1)), complex(0.8, 0.15)},
		})
		samples = append(samples, s)
	}
	load := &Load{
		Terms:   []Termination{DieRC(0.2, 10e-9), Decap(1e-6, 0.01, 1e-9)},
		J:       []complex128{1, 0},
		ObsPort: 0,
	}
	ana, err := Sensitivity(omegas, samples, r0, load)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := SensitivityMC(omegas, samples, r0, load, MCOptions{Trials: 512, Sigma: 1e-7, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(math.Pi / 2)
	for k := range omegas {
		ratio := mc[k] / ana[k]
		if math.Abs(ratio-want)/want > 0.12 {
			t.Fatalf("ω[%d]: MC/analytic = %v want ≈ %v", k, ratio, want)
		}
	}
}

func TestLoadValidate(t *testing.T) {
	l := &Load{Terms: []Termination{Open{}}, J: []complex128{1}, ObsPort: 0}
	if err := l.Validate(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(2); err == nil {
		t.Fatalf("port mismatch accepted")
	}
	l.ObsPort = 5
	if err := l.Validate(1); err == nil {
		t.Fatalf("bad obs port accepted")
	}
}

func TestUniformDieExcitation(t *testing.T) {
	j := UniformDieExcitation(6, []int{1, 3, 5})
	var sum complex128
	for _, v := range j {
		sum += v
	}
	if cmplx.Abs(sum-1) > 1e-15 {
		t.Fatalf("total current %v want 1", sum)
	}
	if j[0] != 0 || j[2] != 0 || j[4] != 0 {
		t.Fatalf("non-die ports must carry no excitation: %v", j)
	}
}
