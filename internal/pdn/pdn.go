// Package pdn models the power-distribution-network termination setup of
// the paper: a generalized Norton load −I(s) = Y_L(s)·V(s) − J(s) attached
// to the ports of a scattering-characterized PDN, the resulting target
// impedance Z_PDN (paper eq. 2), and the first-order sensitivity Ξ(ω) of
// Z_PDN to perturbations of the scattering entries (paper eq. 5) that
// drives all weighting in the flow.
package pdn

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/mat"
	"repro/internal/parallel"
)

// Termination models a one-port load by its admittance at jω.
type Termination interface {
	// Y returns the load admittance at angular frequency ω (rad/s).
	Y(omega float64) complex128
	// Describe returns a short human-readable summary.
	Describe() string
}

// Open is an unterminated port (Y = 0).
type Open struct{}

// Y implements Termination.
func (Open) Y(float64) complex128 { return 0 }

// Describe implements Termination.
func (Open) Describe() string { return "open" }

// Short is an ideal short circuit, approximated by a large finite
// conductance so that the Norton formulation (eq. 2) stays well posed.
// The residual impedance of 10⁻⁸ Ω is negligible against PDN levels (mΩ).
type Short struct{}

// Y implements Termination.
func (Short) Y(float64) complex128 { return 1e8 }

// Describe implements Termination.
func (Short) Describe() string { return "short" }

// Resistor is a resistive load.
type Resistor struct{ R float64 }

// Y implements Termination.
func (r Resistor) Y(float64) complex128 { return complex(1/r.R, 0) }

// Describe implements Termination.
func (r Resistor) Describe() string { return fmt.Sprintf("R %.3g Ω", r.R) }

// SeriesRLC is a series R-L-C branch; the paper's decoupling capacitor
// model (C with ESR and ESL). Set L=0 for the series-RC die block model,
// or C=0 (omitted) for a series R-L (VRM) model.
type SeriesRLC struct {
	R float64 // Ω (ESR)
	L float64 // H (ESL); 0 to omit
	C float64 // F; 0 to omit (pure RL)
}

// Y implements Termination.
func (t SeriesRLC) Y(omega float64) complex128 {
	z := complex(t.R, omega*t.L)
	if t.C > 0 {
		if omega == 0 {
			return 0 // series capacitor blocks DC
		}
		z += 1 / complex(0, omega*t.C)
	}
	if z == 0 {
		return complex(math.Inf(1), 0)
	}
	return 1 / z
}

// Describe implements Termination.
func (t SeriesRLC) Describe() string {
	return fmt.Sprintf("series R=%.3g L=%.3g C=%.3g", t.R, t.L, t.C)
}

// Decap builds the vendor-style decoupling capacitor model used in §IV.
func Decap(c, esr, esl float64) SeriesRLC { return SeriesRLC{R: esr, L: esl, C: c} }

// DieRC builds the series-RC equivalent circuit of an active die block.
func DieRC(r, c float64) SeriesRLC { return SeriesRLC{R: r, C: c} }

// VRM builds a series R-L voltage-regulator output model.
func VRM(r, l float64) SeriesRLC { return SeriesRLC{R: r, L: l} }

// Load is the nominal termination network: one Termination per port plus
// the Norton current excitation vector J (paper eq. 1) and the observation
// port where Z_PDN is read.
type Load struct {
	Terms   []Termination
	J       []complex128 // current excitation per port (A)
	ObsPort int          // index i of eq. (2)
}

// Validate checks internal consistency against a port count.
func (l *Load) Validate(ports int) error {
	if len(l.Terms) != ports {
		return fmt.Errorf("pdn: %d terminations for %d ports", len(l.Terms), ports)
	}
	if len(l.J) != ports {
		return fmt.Errorf("pdn: excitation vector has %d entries for %d ports", len(l.J), ports)
	}
	if l.ObsPort < 0 || l.ObsPort >= ports {
		return fmt.Errorf("pdn: observation port %d out of range", l.ObsPort)
	}
	return nil
}

// YL assembles the diagonal load admittance matrix at ω.
func (l *Load) YL(omega float64) *mat.CMatrix {
	p := len(l.Terms)
	y := mat.NewCMatrix(p, p)
	for i, t := range l.Terms {
		y.Set(i, i, t.Y(omega))
	}
	return y
}

// ErrDimension reports mismatched matrix dimensions.
var ErrDimension = errors.New("pdn: dimension mismatch")

// TargetImpedanceAt computes Z_PDN(jω) from one scattering sample via
// eq. (2): Ẑ = {R0⁻¹(I−S)(I+S)⁻¹ + Y_L}⁻¹, Z_PDN = (Ẑ·J)[obs].
func TargetImpedanceAt(s *mat.CMatrix, r0, omega float64, load *Load) (complex128, error) {
	p := s.Rows
	if s.Cols != p || len(load.Terms) != p {
		return 0, ErrDimension
	}
	m, err := loadedAdmittance(s, r0, omega, load)
	if err != nil {
		return 0, err
	}
	lu, err := mat.CLUFactor(m)
	if err != nil {
		return 0, fmt.Errorf("pdn: loaded system singular at ω=%g: %w", omega, err)
	}
	x := lu.SolveVec(load.J)
	return x[load.ObsPort], nil
}

// loadedAdmittance returns Y + Y_L with Y = R0⁻¹(I−S)(I+S)⁻¹.
func loadedAdmittance(s *mat.CMatrix, r0, omega float64, load *Load) (*mat.CMatrix, error) {
	p := s.Rows
	iPlus := s.Clone()
	iMinus := s.Clone().Scale(-1)
	for i := 0; i < p; i++ {
		iPlus.Set(i, i, iPlus.At(i, i)+1)
		iMinus.Set(i, i, iMinus.At(i, i)+1)
	}
	// Y = R0⁻¹(I−S)(I+S)⁻¹: solve (I+S)ᵀXᵀ = (I−S)ᵀ, Y = Xᵀ/R0.
	lu, err := mat.CLUFactor(iPlus.T())
	if err != nil {
		return nil, fmt.Errorf("pdn: I+S singular at ω=%g: %w", omega, err)
	}
	y := lu.Solve(iMinus.T()).T().Scale(complex(1/r0, 0))
	for i := 0; i < p; i++ {
		y.Set(i, i, y.At(i, i)+load.Terms[i].Y(omega))
	}
	return y, nil
}

// TargetImpedance sweeps TargetImpedanceAt over tabulated samples.
// omega[k] are angular frequencies matching samples[k].
func TargetImpedance(omega []float64, samples []*mat.CMatrix, r0 float64, load *Load) ([]complex128, error) {
	if len(omega) != len(samples) {
		return nil, ErrDimension
	}
	if len(samples) == 0 {
		return nil, ErrDimension
	}
	if err := load.Validate(samples[0].Rows); err != nil {
		return nil, err
	}
	out := make([]complex128, len(omega))
	err := parallel.ForErr(0, len(omega), func(k int) error {
		z, err := TargetImpedanceAt(samples[k], r0, omega[k], load)
		if err != nil {
			return err
		}
		out[k] = z
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SensitivityAt computes the first-order sensitivity Ξ(ω) of Z_PDN to
// independent perturbations of all scattering entries, in closed form.
//
// With Y = R0⁻¹(I−S)(I+S)⁻¹ and Ẑ = (Y+Y_L)⁻¹ one has
// dY = −(2/R0)(I+S)⁻¹ dS (I+S)⁻¹, hence
//
//	dZ_PDN = (2/R0)·aᵀ·dS·b,  a = (I+S)⁻ᵀẐᵀe_i,  b = (I+S)⁻¹ẐJ,
//
// a rank-one gradient G = (2/R0)·a·bᵀ. For i.i.d. zero-mean element
// perturbations of deviation σ, E|ΔZ_PDN|² = σ²‖G‖_F², so the paper's Ξ of
// eq. (5) equals (up to the distribution-dependent constant absorbed in
// the weight normalization) ‖G‖_F = (2/R0)·‖a‖₂·‖b‖₂.
func SensitivityAt(s *mat.CMatrix, r0, omega float64, load *Load) (float64, error) {
	p := s.Rows
	iPlus := s.Clone()
	for i := 0; i < p; i++ {
		iPlus.Set(i, i, iPlus.At(i, i)+1)
	}
	m, err := loadedAdmittance(s, r0, omega, load)
	if err != nil {
		return 0, err
	}
	luM, err := mat.CLUFactor(m)
	if err != nil {
		return 0, fmt.Errorf("pdn: loaded system singular at ω=%g: %w", omega, err)
	}
	luMT, err := mat.CLUFactor(m.T())
	if err != nil {
		return 0, fmt.Errorf("pdn: loaded system singular at ω=%g: %w", omega, err)
	}
	luP, err := mat.CLUFactor(iPlus)
	if err != nil {
		return 0, fmt.Errorf("pdn: I+S singular at ω=%g: %w", omega, err)
	}
	luPT, err := mat.CLUFactor(iPlus.T())
	if err != nil {
		return 0, err
	}
	// b = (I+S)⁻¹·Ẑ·J.
	w := luM.SolveVec(load.J)
	b := luP.SolveVec(w)
	// a = (I+S)⁻ᵀ·Ẑᵀ·e_i.
	ei := make([]complex128, p)
	ei[load.ObsPort] = 1
	u := luMT.SolveVec(ei)
	a := luPT.SolveVec(u)
	return (2 / r0) * mat.CNorm2(a) * mat.CNorm2(b), nil
}

// Sensitivity sweeps SensitivityAt over tabulated samples.
func Sensitivity(omega []float64, samples []*mat.CMatrix, r0 float64, load *Load) ([]float64, error) {
	if len(omega) != len(samples) || len(samples) == 0 {
		return nil, ErrDimension
	}
	if err := load.Validate(samples[0].Rows); err != nil {
		return nil, err
	}
	out := make([]float64, len(omega))
	err := parallel.ForErr(0, len(omega), func(k int) error {
		xi, err := SensitivityAt(samples[k], r0, omega[k], load)
		if err != nil {
			return err
		}
		out[k] = xi
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// UniformDieExcitation builds the paper's synchronous-switching excitation:
// total current 1 A split equally over the given die ports.
func UniformDieExcitation(ports int, diePorts []int) []complex128 {
	j := make([]complex128, ports)
	if len(diePorts) == 0 {
		return j
	}
	share := complex(1/float64(len(diePorts)), 0)
	for _, p := range diePorts {
		j[p] = share
	}
	return j
}

// absOrTiny guards logarithms of impedance magnitudes.
func absOrTiny(z complex128) float64 {
	a := cmplx.Abs(z)
	if a < 1e-300 {
		return 1e-300
	}
	return a
}
