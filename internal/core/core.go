// Package core implements the primary contribution of Ubolli et al.,
// "Sensitivity-based weighting for passivity enforcement of linear
// macromodels in power integrity applications" (DATE 2014): the inclusion
// of the target-impedance sensitivity Ξ(ω) as a frequency-dependent weight
// inside the passivity enforcement loop.
//
// The pieces, following §III of the paper:
//
//  1. the sensitivity samples Ξ_k come from the nominal termination
//     network (internal/pdn, eq. 5);
//  2. a low-order minimum-phase rational weight Ξ̃(s) is fitted to them by
//     Magnitude Vector Fitting (internal/vecfit, eq. 17);
//  3. for each scattering entry the cascade S_ij(s)·Ξ̃(s) is realized in
//     the block form (18); its controllability Gramian is partitioned (19)
//     and the (1,1) block defines the weighted norm (20)
//     ‖δS_ij‖²_Ξ = δc_ij·P^Ξ,11·δc_ijᵀ, assembled over entries (21);
//  4. that norm replaces the standard L2 cost in the enforcement QP
//     (internal/passivity, eq. 9).
//
// With poles shared by all entries the cascade (A,B) pair — and hence
// P^Ξ,11 — is identical for every entry, so the weighted cost is exactly
// one Lyapunov solve more expensive than the standard one, matching the
// paper's "negligible overhead" claim.
package core

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/passivity"
	"repro/internal/pdn"
	"repro/internal/rational"
	"repro/internal/statespace"
	"repro/internal/vecfit"
)

// ErrWeightNotSISO is returned when the weight model is not scalar. It
// aliases the rational-package sentinel so errors.Is matches either spelling.
var ErrWeightNotSISO = rational.ErrWeightNotSISO

// CascadeError is the typed error returned by the weighted-Gramian
// constructors when the cascade realization S_ij(s)·Ξ̃(s) or its Gramian
// cannot be built (unstable poles, dimension mismatch, failed Lyapunov
// solve). Stage names the step that failed; Unwrap exposes the cause.
type CascadeError struct {
	Stage string // "cascade realization" or "gramian"
	Err   error
}

// Error implements the error interface.
func (e *CascadeError) Error() string {
	return fmt.Sprintf("core: weighted cascade %s: %v", e.Stage, e.Err)
}

// Unwrap returns the underlying cause.
func (e *CascadeError) Unwrap() error { return e.Err }

// WeightedGramian computes the (1,1) block P^Ξ,11 of the controllability
// Gramian of the cascade S_ij(s)·Ξ̃(s) (paper eqs. 18–19). The block is
// common to all matrix entries because the model's poles are. The cascade
// A matrix is block upper-triangular with tiny (≤2×2) diagonal blocks, so
// the Gramian is assembled block-by-block in closed form
// (rational.CascadeGramian, O(n² + n·n_w)) instead of through a dense
// (n+n_w)-dimensional Lyapunov solve; WeightedGramianDense keeps the dense
// statespace path as the validation oracle.
func WeightedGramian(model *rational.Model, weight *rational.Model) (*mat.Matrix, error) {
	if weight.Ports() != 1 {
		return nil, ErrWeightNotSISO
	}
	p11, err := rational.CascadeGramian(model.Poles, weight)
	if err != nil {
		return nil, &CascadeError{Stage: "gramian", Err: err}
	}
	return p11, nil
}

// WeightedGramianDense is the dense-oracle construction of P^Ξ,11: the
// cascade is realized explicitly through statespace.Series (eq. 18) and its
// full (n+n_w)-dimensional controllability Gramian solved by the dense
// quasi-triangular Lyapunov solver, then partitioned (eq. 19). It is
// O((n+n_w)³) and exists to cross-validate — and benchmark against — the
// closed-form WeightedGramian, which must match it to tight tolerance.
func WeightedGramianDense(model *rational.Model, weight *rational.Model) (*mat.Matrix, error) {
	if weight.Ports() != 1 {
		return nil, ErrWeightNotSISO
	}
	a1, b1 := model.BasisRealization()
	n := len(b1)
	wsys := weight.Realization() // SISO realization of Ξ̃

	// Cascade (18): A = [[A₁, b₁c̃],[0, Ã]], B = [b₁d̃; b̃]. The Gramian
	// depends only on (A, B); C and D are zero stand-ins of the right shape.
	bcol := mat.NewMatrix(n, 1)
	for i, v := range b1 {
		bcol.Set(i, 0, v)
	}
	g := statespace.MustNew(a1, bcol, mat.NewMatrix(1, n), mat.NewMatrix(1, 1))
	cascade, err := statespace.Series(g, wsys)
	if err != nil {
		return nil, &CascadeError{Stage: "cascade realization", Err: err}
	}
	p, err := cascade.Gramian()
	if err != nil {
		return nil, &CascadeError{Stage: "gramian", Err: err}
	}
	p11 := p.Slice(0, n, 0, n)
	p11.Symmetrize()
	return p11, nil
}

// EnforceWeighted runs the passivity enforcement loop with the
// sensitivity-weighted cost (paper §III, second option): the norm
// minimized per iteration is Σ_ij δc_ij·P^Ξ,11·δc_ijᵀ.
func EnforceWeighted(model *rational.Model, weight *rational.Model, opts passivity.EnforceOptions) (*passivity.EnforceReport, error) {
	gram, err := WeightedGramian(model, weight)
	if err != nil {
		return nil, err
	}
	opts.CostGramian = gram
	return passivity.Enforce(model, opts)
}

// WeightOptions configures the sensitivity-weight construction.
type WeightOptions struct {
	// Order is the weight model order n_w (default 8, the paper's value).
	Order int
	// Iterations for the magnitude fit (default 20).
	Iterations int
	// Floor clips the sensitivity samples from below at Floor·max(Ξ) to
	// keep the magnitude fit well conditioned across deep valleys
	// (default 1e-4).
	Floor float64
}

// BuildWeight computes the sensitivity samples Ξ_k of the loaded PDN from
// its scattering data (eq. 5, closed form) and fits the minimum-phase
// rational weight Ξ̃(s) by Magnitude Vector Fitting. It returns the weight
// model and the raw samples.
func BuildWeight(omega []float64, samples []*mat.CMatrix, r0 float64, load *pdn.Load, opts WeightOptions) (*rational.Model, []float64, error) {
	if opts.Order <= 0 {
		opts.Order = 8
	}
	if opts.Floor <= 0 {
		opts.Floor = 1e-4
	}
	xi, err := pdn.Sensitivity(omega, samples, r0, load)
	if err != nil {
		return nil, nil, fmt.Errorf("core: sensitivity sweep: %w", err)
	}
	// Clip the deep valleys: the weight only needs to be right where the
	// sensitivity is significant (the paper likewise skips the ~GHz spike
	// because both S and Z are already accurate there).
	maxXi := 0.0
	for _, v := range xi {
		if v > maxXi {
			maxXi = v
		}
	}
	clipped := make([]float64, len(xi))
	floor := opts.Floor * maxXi
	for i, v := range xi {
		if v < floor {
			v = floor
		}
		clipped[i] = v
	}
	weight, _, err := vecfit.FitMagnitude(omega, clipped, vecfit.MagOptions{
		Order:      opts.Order,
		Iterations: opts.Iterations,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("core: magnitude fit of sensitivity: %w", err)
	}
	return weight, xi, nil
}
