package core

import (
	"math"
	"testing"

	"repro/internal/pdn"
	"repro/internal/synthpdn"
	"repro/internal/vecfit"
)

func smallPDNData(t *testing.T) ([]float64, *synthpdn.PDN, *pdn.Load, []float64) {
	t.Helper()
	p, err := synthpdn.Build(synthpdn.Small())
	if err != nil {
		t.Fatal(err)
	}
	var freqs []float64
	freqs = append(freqs, 0)
	n := 50
	for i := 0; i < n; i++ {
		f := 1e3 * math.Pow(2e9/1e3, float64(i)/float64(n-1))
		freqs = append(freqs, f)
	}
	omega := make([]float64, len(freqs))
	for i, f := range freqs {
		omega[i] = 2 * math.Pi * f
	}
	return omega, p, p.NominalLoad(), freqs
}

func TestFitRefinedNeverWorseThanRoundZero(t *testing.T) {
	omega, p, load, freqs := smallPDNData(t)
	samples, err := p.Circuit.SweepS(freqs, 50)
	if err != nil {
		t.Fatal(err)
	}
	model, rep, err := FitRefined(omega, samples, 50, load, RefineOptions{
		Rounds: 2,
		Fit:    vecfit.Options{NumPoles: 8, Iterations: 5, ConstrainD: 0.999},
	})
	if err != nil {
		t.Fatal(err)
	}
	if model == nil {
		t.Fatal("no model returned")
	}
	if len(rep.WorstRelErr) != 3 {
		t.Fatalf("expected 3 recorded rounds, got %d", len(rep.WorstRelErr))
	}
	best := rep.WorstRelErr[rep.BestRound]
	for r, e := range rep.WorstRelErr {
		if e < best-1e-12 {
			t.Fatalf("round %d error %v beats recorded best %v", r, e, best)
		}
	}
	if best > rep.WorstRelErr[0]+1e-12 {
		t.Fatalf("refinement must not be worse than the plain weights: %v vs %v", best, rep.WorstRelErr[0])
	}
	if len(rep.Weights) != len(omega) {
		t.Fatalf("weights length %d want %d", len(rep.Weights), len(omega))
	}
	for _, w := range rep.Weights {
		if !(w > 0) {
			t.Fatalf("nonpositive refined weight %v", w)
		}
	}
}

func TestBoostWeightsClipsAndScales(t *testing.T) {
	w := []float64{1, 1, 1, 1}
	e := []float64{1e-6, 1, 1, 1e6}
	out := boostWeights(w, e, RefineOptions{Exponent: 1, MaxBoost: 2})
	if out[0] != 0.5 {
		t.Fatalf("low-error weight should clip to 1/MaxBoost, got %v", out[0])
	}
	if out[3] != 2 {
		t.Fatalf("high-error weight should clip to MaxBoost, got %v", out[3])
	}
	if out[1] <= 0 || out[2] <= 0 {
		t.Fatal("boosted weights must stay positive")
	}
}
