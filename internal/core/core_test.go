package core

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/passivity"
	"repro/internal/rational"
	"repro/internal/synthpdn"
)

// testWeight builds a simple minimum-phase weight Ξ̃(s).
func testWeight(t *testing.T) *rational.Model {
	t.Helper()
	w, err := rational.FromZPK(
		[]complex128{complex(-50, 0), complex(-3, 4), complex(-3, -4)},
		[]complex128{complex(-0.5, 0), complex(-8, 15), complex(-8, -15)},
		0.7,
	)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// testModel builds a 2-port pole-residue model.
func testModel(t *testing.T) *rational.Model {
	t.Helper()
	poles := []complex128{
		complex(-2, 0),
		complex(-1, 20), complex(-1, -20),
	}
	r0 := mat.NewCMatrixFrom([][]complex128{{0.3, 0.05}, {0.05, 0.2}})
	r1 := mat.NewCMatrixFrom([][]complex128{{0.15 + 0.1i, 0.02}, {0.02, 0.01 - 0.05i}})
	r1c := r1.Clone()
	for i := range r1c.Data {
		r1c.Data[i] = cmplx.Conj(r1c.Data[i])
	}
	d := mat.NewMatrixFrom([][]float64{{0.9, 0.02}, {0.02, 0.88}})
	m, err := rational.New(poles, []*mat.CMatrix{r0, r1, r1c}, d)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWeightedGramianMatchesQuadrature(t *testing.T) {
	// δc·P^Ξ,11·δcᵀ must equal the L2 norm ‖Ξ̃·δS_ij‖₂², evaluated by
	// numerical quadrature of (1/π)∫₀^∞ |Ξ̃(jω)|²·|δc·k̃(jω)|² dω.
	model := testModel(t)
	weight := testWeight(t)
	p11, err := WeightedGramian(model, weight)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(100))
	n := model.NumPoles()
	for trial := 0; trial < 3; trial++ {
		dc := make([]float64, n)
		for i := range dc {
			dc[i] = rng.NormFloat64()
		}
		// Quadratic form.
		qf := 0.0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				qf += dc[i] * p11.At(i, j) * dc[j]
			}
		}
		// Quadrature on a dense log grid (integrand decays like 1/ω²).
		const nq = 400000
		lo, hi := 1e-4, 1e7
		sum := 0.0
		prevW := lo
		prevF := integrand(model, weight, dc, lo)
		step := math.Pow(hi/lo, 1.0/float64(nq))
		for k := 1; k <= nq; k++ {
			w := lo * math.Pow(step, float64(k))
			f := integrand(model, weight, dc, w)
			sum += 0.5 * (prevF + f) * (w - prevW)
			prevW, prevF = w, f
		}
		integral := sum / math.Pi
		if math.Abs(integral-qf) > 0.02*math.Abs(qf) {
			t.Fatalf("trial %d: quadrature %v vs quadratic form %v", trial, integral, qf)
		}
	}
}

func integrand(model, weight *rational.Model, dc []float64, omega float64) float64 {
	k := model.EvalBasis(omega)
	var ds complex128
	for i := range dc {
		ds += complex(dc[i], 0) * k[i]
	}
	xi := weight.EvalEntry(0, 0, omega)
	v := cmplx.Abs(xi) * cmplx.Abs(ds)
	return v * v
}

func TestWeightedGramianSPD(t *testing.T) {
	model := testModel(t)
	weight := testWeight(t)
	p11, err := WeightedGramian(model, weight)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mat.CholFactor(p11); err != nil {
		t.Fatalf("P^Ξ,11 must be SPD: %v", err)
	}
}

func TestWeightedGramianRejectsMIMOWeight(t *testing.T) {
	model := testModel(t)
	if _, err := WeightedGramian(model, model); err == nil {
		t.Fatalf("MIMO weight accepted")
	}
}

func TestEnforceWeightedProducesPassiveModel(t *testing.T) {
	model := testModel(t) // non-passive by construction (σ crosses 1)
	chk, err := passivity.Check(model, passivity.CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if chk.Passive {
		t.Fatalf("test model should violate passivity, σmax=%v", chk.MaxSigma)
	}
	weight := testWeight(t)
	rep, err := EnforceWeighted(model, weight, passivity.EnforceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passive {
		t.Fatalf("weighted enforcement failed")
	}
}

func TestEachSchemeMinimizesItsOwnNorm(t *testing.T) {
	// Weighted enforcement must produce a perturbation with weighted norm
	// ‖Ξ̃·δS‖² no larger than the standard scheme's perturbation measured
	// in the same weighted norm — and vice versa for the standard norm.
	// (The full behavioral payoff — preserved target impedance — is
	// demonstrated end-to-end by the Fig. 5 experiment.)
	mStd := richNonPassive(t)
	mW := richNonPassive(t)
	ref := richNonPassive(t)
	weight, err := rational.FromZPK(
		[]complex128{complex(-2000, 0)},
		[]complex128{complex(-2, 0)},
		0.04,
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := passivity.Enforce(mStd, passivity.EnforceOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := EnforceWeighted(mW, weight, passivity.EnforceOptions{}); err != nil {
		t.Fatal(err)
	}
	pStd, err := passivity.StandardGramian(ref)
	if err != nil {
		t.Fatal(err)
	}
	pXi, err := WeightedGramian(ref, weight)
	if err != nil {
		t.Fatal(err)
	}
	norm := func(m *rational.Model, g *mat.Matrix) float64 {
		p := ref.Ports()
		total := 0.0
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				a := m.CVector(i, j)
				b := ref.CVector(i, j)
				d := make([]float64, len(a))
				for k := range a {
					d[k] = a[k] - b[k]
				}
				for r := 0; r < len(d); r++ {
					for c := 0; c < len(d); c++ {
						total += d[r] * g.At(r, c) * d[c]
					}
				}
			}
		}
		return total
	}
	// Allow slack: the two runs may take different iteration paths and
	// constraint sets, so exact optimality comparison is only approximate.
	if nw, ns := norm(mW, pXi), norm(mStd, pXi); nw > ns*1.10+1e-15 {
		t.Fatalf("weighted scheme has larger weighted norm: %v vs %v", nw, ns)
	}
	if ns, nw := norm(mStd, pStd), norm(mW, pStd); ns > nw*1.10+1e-15 {
		t.Fatalf("standard scheme has larger standard norm: %v vs %v", ns, nw)
	}
}

// richNonPassive builds a 2-port model with four pole groups spread over
// three decades and a mid-band passivity violation, giving the two cost
// Gramians genuinely different geometry.
func richNonPassive(t *testing.T) *rational.Model {
	t.Helper()
	poles := []complex128{
		complex(-0.4, 0),
		complex(-0.5, 3), complex(-0.5, -3),
		complex(-1, 20), complex(-1, -20),
		complex(-4, 150), complex(-4, -150),
	}
	rr := func(a, b, c, d complex128) *mat.CMatrix {
		return mat.NewCMatrixFrom([][]complex128{{a, b}, {b, d}})
	}
	r0 := rr(0.08, 0.01, 0, 0.05)
	r1 := rr(0.04+0.02i, 0.01, 0, 0.03-0.01i)
	r2 := rr(0.14+0.05i, 0.02, 0, 0.02+0.01i)
	r3 := rr(0.06-0.02i, 0.01, 0, 0.05+0.02i)
	d := mat.NewMatrixFrom([][]float64{{0.93, 0.02}, {0.02, 0.9}})
	m, err := rational.New(poles,
		[]*mat.CMatrix{r0, r1, conjC(r1), r2, conjC(r2), r3, conjC(r3)}, d)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func conjC(m *mat.CMatrix) *mat.CMatrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] = cmplx.Conj(out.Data[i])
	}
	return out
}

func TestBuildWeightOnSmallPDN(t *testing.T) {
	p, err := synthpdn.Build(synthpdn.Small())
	if err != nil {
		t.Fatal(err)
	}
	freqs := make([]float64, 60)
	omega := make([]float64, len(freqs))
	for i := range freqs {
		t := float64(i) / float64(len(freqs)-1)
		freqs[i] = 1e3 * math.Pow(2e9/1e3, t)
		omega[i] = 2 * math.Pi * freqs[i]
	}
	ss, err := p.Circuit.SweepS(freqs, 50)
	if err != nil {
		t.Fatal(err)
	}
	weight, xi, err := BuildWeight(omega, ss, 50, p.NominalLoad(), WeightOptions{Order: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(xi) != len(freqs) {
		t.Fatalf("xi length %d", len(xi))
	}
	if !weight.IsStable(0) {
		t.Fatalf("weight model unstable")
	}
	// |Ξ̃| should track the sensitivity shape: compare at band ends within
	// a generous factor (the clipped valleys are intentionally off).
	gLo := cmplx.Abs(weight.EvalEntry(0, 0, omega[0]))
	gHi := cmplx.Abs(weight.EvalEntry(0, 0, omega[len(omega)-1]))
	if gLo < gHi {
		t.Fatalf("weight should be larger at low frequency: |Ξ̃(lo)|=%v |Ξ̃(hi)|=%v", gLo, gHi)
	}
	ratioLo := gLo / xi[0]
	if ratioLo < 0.3 || ratioLo > 3 {
		t.Fatalf("weight misses the low-frequency sensitivity level: ratio %v", ratioLo)
	}
}

// TestWeightedGramianMatchesDenseOracle: the closed-form block assembly
// must reproduce the dense statespace.Series + Lyapunov oracle to ≤1e-10
// relative Frobenius error across ≥50 random (model, weight) pairs.
func TestWeightedGramianMatchesDenseOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	worst := 0.0
	for trial := 0; trial < 60; trial++ {
		mPoles := rational.RandomStablePoles(rng, 2+rng.Intn(20))
		model, err := rational.NewScalar(mPoles, make([]complex128, len(mPoles)), 0)
		if err != nil {
			t.Fatal(err)
		}
		weight, err := rational.RandomScalarWeight(rng, 1+rng.Intn(8))
		if err != nil {
			t.Fatal(err)
		}
		fast, err := WeightedGramian(model, weight)
		if err != nil {
			t.Fatalf("trial %d: closed form: %v", trial, err)
		}
		dense, err := WeightedGramianDense(model, weight)
		if err != nil {
			t.Fatalf("trial %d: dense oracle: %v", trial, err)
		}
		var num, den float64
		for i := 0; i < dense.Rows; i++ {
			for j := 0; j < dense.Cols; j++ {
				d := fast.At(i, j) - dense.At(i, j)
				num += d * d
				v := dense.At(i, j)
				den += v * v
			}
		}
		rel := math.Sqrt(num) / math.Sqrt(den)
		if rel > worst {
			worst = rel
		}
		if rel > 1e-10 {
			t.Fatalf("trial %d: relative Frobenius error %v > 1e-10 (n=%d, nw=%d)",
				trial, rel, len(mPoles), weight.NumPoles())
		}
	}
	t.Logf("worst relative Frobenius error over 60 pairs: %.3g", worst)
}

// TestWeightedGramianTypedError: failures surface as *CascadeError with the
// underlying sentinel reachable through errors.Is.
func TestWeightedGramianTypedError(t *testing.T) {
	model, err := rational.NewScalar([]complex128{complex(0.5, 0)}, []complex128{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	weight := testWeight(t)
	_, err = WeightedGramian(model, weight)
	var ce *CascadeError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CascadeError, got %T (%v)", err, err)
	}
	if !errors.Is(err, rational.ErrUnstablePoles) {
		t.Fatalf("cause not reachable: %v", err)
	}
}

// TestWeightedBatchMatchesSequentialEnforceWeighted: the acceptance
// criterion of the weighted batch path — passivity.EnforceBatch with a
// shared weight must be bitwise identical to sequential per-model
// EnforceWeighted at 1 and 4 workers (both build the cost from the same
// closed-form cascade Gramian).
func TestWeightedBatchMatchesSequentialEnforceWeighted(t *testing.T) {
	const n = 5
	weight := testWeight(t)
	build := func() []*rational.Model {
		lib := make([]*rational.Model, n)
		for i := range lib {
			m, err := passivity.SyntheticModel(passivity.SyntheticOptions{
				Ports: 2, Poles: 14 + 2*(i%3), Seed: int64(70 + i), PeakGain: 1.1,
			})
			if err != nil {
				t.Fatal(err)
			}
			lib[i] = m
		}
		return lib
	}
	base := passivity.EnforceOptions{Check: passivity.CheckOptions{Method: passivity.MethodAdaptive}}

	seq := build()
	for i, m := range seq {
		if _, err := EnforceWeighted(m, weight, base); err != nil {
			t.Fatalf("sequential EnforceWeighted model %d: %v", i, err)
		}
	}
	for _, workers := range []int{1, 4} {
		lib := build()
		rep := passivity.EnforceBatch(lib, passivity.BatchOptions{
			Enforce: base, Weight: weight, Workers: workers,
		})
		for i := range lib {
			if rep.Results[i].Err != nil {
				t.Fatalf("workers=%d model %d: %v", workers, i, rep.Results[i].Err)
			}
			for k := range lib[i].Residues {
				if !lib[i].Residues[k].Equalish(seq[i].Residues[k], 0) {
					t.Fatalf("workers=%d model %d: residues differ bitwise from EnforceWeighted", workers, i)
				}
			}
			if !lib[i].D.Equalish(seq[i].D, 0) {
				t.Fatalf("workers=%d model %d: D differs from EnforceWeighted", workers, i)
			}
		}
	}
}
