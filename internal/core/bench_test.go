package core

import (
	"math/rand"
	"testing"

	"repro/internal/rational"
)

// benchModelAndWeight builds a deterministic nP-pole model skeleton (only
// the pole set matters for the Gramian) and an order-nw weight, the paper's
// n_w = 8 by default.
func benchModelAndWeight(b *testing.B, np, nw int) (*rational.Model, *rational.Model) {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	mPoles := rational.RandomStablePoles(rng, np)
	model, err := rational.NewScalar(mPoles, make([]complex128, len(mPoles)), 0)
	if err != nil {
		b.Fatal(err)
	}
	weight, err := rational.RandomScalarWeight(rng, nw)
	if err != nil {
		b.Fatal(err)
	}
	return model, weight
}

// BenchmarkWeightedGramian measures the closed-form cascade block assembly
// (rational.CascadeGramian) against the dense statespace.Series + Lyapunov
// oracle it replaced, at the paper-scale operating point n_p = 500,
// n_w = 8. The closed form is O(n² + n·n_w); the dense solve is
// O((n+n_w)³) and was the last dense Lyapunov solve on any hot path.
func BenchmarkWeightedGramian(b *testing.B) {
	model, weight := benchModelAndWeight(b, 500, 8)
	b.Run("closed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := WeightedGramian(model, weight); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := WeightedGramianDense(model, weight); err != nil {
				b.Fatal(err)
			}
		}
	})
}
