package core

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/mat"
	"repro/internal/pdn"
	"repro/internal/rational"
	"repro/internal/vecfit"
)

// RefineOptions configures the iterative reweighting of Grivet-Talocia et
// al., "An iterative reweighting process for macromodel extraction of power
// distribution networks" (EPEPS 2013) — reference [23] of the paper, whose
// weight-refinement step the paper builds on.
type RefineOptions struct {
	// Rounds is the number of refinement rounds after the initial
	// sensitivity-weighted fit (default 3).
	Rounds int
	// Exponent is the boost exponent applied to the realized error ratio
	// (default 1).
	Exponent float64
	// MaxBoost clips the per-round, per-frequency weight multiplier into
	// [1/MaxBoost, MaxBoost] (default 30).
	MaxBoost float64
	// Fit carries the Vector Fitting configuration (NumPoles mandatory).
	Fit vecfit.Options
}

// RefineReport records one refinement run.
type RefineReport struct {
	// WorstRelErr lists the worst relative target-impedance error of the
	// model after each round (index 0 = plain sensitivity weights).
	WorstRelErr []float64
	// BestRound is the index into WorstRelErr that produced the returned
	// model.
	BestRound int
	// Weights are the final (best) per-frequency weights.
	Weights []float64
}

// FitRefined runs the iterative reweighting loop of [23]: fit with the
// first-order sensitivity weights w_k = Ξ_k, measure the realized
// macromodel-based target-impedance error against the data-based nominal
// response, boost the weights where that error concentrates, and refit.
// The best model over all rounds (in the worst-relative-Z_PDN metric) is
// returned, so refinement can only help.
func FitRefined(omega []float64, samples []*mat.CMatrix, r0 float64, load *pdn.Load, opts RefineOptions) (*rational.Model, *RefineReport, error) {
	if opts.Rounds <= 0 {
		opts.Rounds = 3
	}
	if opts.Exponent <= 0 {
		opts.Exponent = 1
	}
	if opts.MaxBoost <= 1 {
		opts.MaxBoost = 30
	}
	xi, err := pdn.Sensitivity(omega, samples, r0, load)
	if err != nil {
		return nil, nil, fmt.Errorf("core: sensitivity sweep: %w", err)
	}
	zref, err := pdn.TargetImpedance(omega, samples, r0, load)
	if err != nil {
		return nil, nil, fmt.Errorf("core: nominal impedance: %w", err)
	}

	weights := append([]float64(nil), xi...)
	rep := &RefineReport{BestRound: -1}
	var best *rational.Model
	bestScore := math.Inf(1)
	bestWeights := weights

	for round := 0; round <= opts.Rounds; round++ {
		fitOpts := opts.Fit
		fitOpts.Weights = weights
		model, _, err := vecfit.Fit(omega, samples, fitOpts)
		if err != nil {
			return nil, nil, fmt.Errorf("core: refinement round %d: %w", round, err)
		}
		relErr, score, err := realizedError(model, omega, r0, load, zref)
		if err != nil {
			return nil, nil, fmt.Errorf("core: refinement round %d: %w", round, err)
		}
		rep.WorstRelErr = append(rep.WorstRelErr, score)
		if score < bestScore {
			best, bestScore, rep.BestRound = model, score, round
			bestWeights = append([]float64(nil), weights...)
		}
		if round == opts.Rounds {
			break
		}
		weights = boostWeights(weights, relErr, opts)
	}
	rep.Weights = bestWeights
	return best, rep, nil
}

// realizedError evaluates the model-based Z_PDN against the nominal one,
// returning the per-frequency relative error and its maximum.
func realizedError(model *rational.Model, omega []float64, r0 float64, load *pdn.Load, zref []complex128) ([]float64, float64, error) {
	relErr := make([]float64, len(omega))
	worst := 0.0
	for k, w := range omega {
		z, err := pdn.TargetImpedanceAt(model.Eval(w), r0, w, load)
		if err != nil {
			return nil, 0, err
		}
		relErr[k] = cmplx.Abs(z-zref[k]) / (1e-15 + cmplx.Abs(zref[k]))
		if relErr[k] > worst {
			worst = relErr[k]
		}
	}
	return relErr, worst, nil
}

// boostWeights multiplies each weight by (e_k/ē)^α, clipped, where ē is
// the mean realized error: frequencies that dominate the loaded-domain
// error gain emphasis in the next least-squares pass.
func boostWeights(weights, relErr []float64, opts RefineOptions) []float64 {
	mean := 0.0
	for _, e := range relErr {
		mean += e
	}
	mean /= float64(len(relErr))
	if mean <= 0 {
		return weights
	}
	out := make([]float64, len(weights))
	for k, w := range weights {
		boost := math.Pow(relErr[k]/mean, opts.Exponent)
		if boost > opts.MaxBoost {
			boost = opts.MaxBoost
		}
		if boost < 1/opts.MaxBoost {
			boost = 1 / opts.MaxBoost
		}
		out[k] = w * boost
	}
	return out
}
