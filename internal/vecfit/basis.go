// Package vecfit implements weighted, relaxed Vector Fitting of tabulated
// frequency responses to common-pole rational macromodels (Gustavsen &
// Semlyen 1999; relaxed variant Gustavsen 2006; fast per-response QR
// compression per Deschrijver et al. 2008), plus Magnitude Vector Fitting
// for fitting minimum-phase weights to magnitude-only data (De Tommasi et
// al. 2008), as required by the sensitivity-weighting flow of Ubolli et al.
// (DATE 2014).
package vecfit

import (
	"math"
	"math/cmplx"

	"repro/internal/mat"
	"repro/internal/rational"
)

// FlipMode selects how unstable basis poles are reflected back into the
// admissible region after each relocation step.
type FlipMode int

const (
	// FlipLHP reflects poles into the open left half plane (standard VF on
	// the jω axis): Re(p) ← −|Re(p)|.
	FlipLHP FlipMode = iota
	// FlipOffNegReal reflects real poles off the closed negative real axis
	// (magnitude VF in the u = s² domain, whose admissible poles are
	// anywhere except ℝ₋ where the data lives): real p < 0 ← −p.
	FlipOffNegReal
)

// basisMatrix evaluates the real-coefficient partial-fraction basis at the
// given sample points: column m holds φ_m(points[k]). Real pole slots hold
// 1/(s−p); conjugate pair slots hold 1/(s−p)+1/(s−p̄) and j/(s−p)−j/(s−p̄),
// matching the rational.Model residue coordinate convention [Re r, Im r].
func basisMatrix(points, poles []complex128) *mat.CMatrix {
	k := len(points)
	n := len(poles)
	phi := mat.NewCMatrix(k, n)
	for ki, s := range points {
		row := phi.Row(ki)
		for m := 0; m < n; {
			p := poles[m]
			if imag(p) == 0 {
				row[m] = 1 / (s - p)
				m++
				continue
			}
			d1 := 1 / (s - p)
			d2 := 1 / (s - cmplx.Conj(p))
			row[m] = d1 + d2
			row[m+1] = complex(0, 1) * (d1 - d2)
			m += 2
		}
	}
	return phi
}

// InitialPolesLog places the customary VF starting poles: complex pairs
// with imaginary parts log-spaced across [ωmin, ωmax] and real parts
// −ωi/100; if n is odd one extra real pole goes at the geometric band
// center. Frequencies are angular (rad/s). ωmin is clamped away from zero.
func InitialPolesLog(omegaMin, omegaMax float64, n int) []complex128 {
	if omegaMin <= 0 {
		omegaMin = omegaMax * 1e-6
	}
	if omegaMax <= omegaMin {
		omegaMax = omegaMin * 10
	}
	var poles []complex128
	pairs := n / 2
	if n%2 == 1 {
		center := math.Sqrt(omegaMin * omegaMax)
		poles = append(poles, complex(-center, 0))
	}
	if pairs == 1 {
		b := math.Sqrt(omegaMin * omegaMax)
		poles = append(poles, complex(-b/100, b), complex(-b/100, -b))
		return poles
	}
	for i := 0; i < pairs; i++ {
		t := float64(i) / float64(pairs-1)
		b := omegaMin * math.Pow(omegaMax/omegaMin, t)
		poles = append(poles, complex(-b/100, b), complex(-b/100, -b))
	}
	return poles
}

// InitialPolesRealLog places real poles log-spaced over [lo, hi] (both
// positive); used by magnitude VF in the u-domain where starting poles sit
// on the positive real axis, mirroring the negative-real-axis data support.
func InitialPolesRealLog(lo, hi float64, n int) []complex128 {
	if lo <= 0 {
		lo = hi * 1e-6
	}
	poles := make([]complex128, n)
	for i := 0; i < n; i++ {
		t := 0.5
		if n > 1 {
			t = float64(i) / float64(n-1)
		}
		poles[i] = complex(lo*math.Pow(hi/lo, t), 0)
	}
	return poles
}

// flipPoles reflects inadmissible poles back into the admissible region,
// preserving conjugate-pair structure. Returns the flipped list.
func flipPoles(poles []complex128, mode FlipMode) []complex128 {
	out := make([]complex128, len(poles))
	copy(out, poles)
	for i := 0; i < len(out); {
		p := out[i]
		switch mode {
		case FlipLHP:
			if real(p) > 0 {
				p = complex(-real(p), imag(p))
			}
		case FlipOffNegReal:
			if imag(p) == 0 && real(p) < 0 {
				p = -p
			}
		}
		if imag(p) == 0 {
			out[i] = p
			i++
			continue
		}
		out[i] = p
		out[i+1] = cmplx.Conj(p)
		i += 2
	}
	return out
}

// relocatePoles computes the zeros of the sigma function
// σ(s) = d̃ + c̃ᵀ(sI−A₁)⁻¹b₁ as eig(A₁ − b₁c̃ᵀ/d̃) and returns them in
// canonical pair order.
func relocatePoles(poles []complex128, cTilde []float64, dTilde float64) ([]complex128, error) {
	a1, b1 := rational.BasisFromPoles(poles)
	n := len(poles)
	m := a1.Clone()
	for i := 0; i < n; i++ {
		if b1[i] == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			m.Set(i, j, m.At(i, j)-b1[i]*cTilde[j]/dTilde)
		}
	}
	ev, err := mat.EigenValues(m)
	if err != nil {
		return nil, err
	}
	sorted, _, err := rational.SortPairs(ev, 1e-8)
	if err != nil {
		return nil, err
	}
	return sorted, nil
}
