package vecfit

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/rational"
)

// knownMinPhase builds a minimum-phase test system from poles/zeros/gain.
func knownMinPhase(t *testing.T) *rational.Model {
	t.Helper()
	zeros := []complex128{complex(-0.5, 0), complex(-4, 9), complex(-4, -9)}
	poles := []complex128{complex(-1, 0), complex(-2, 6), complex(-2, -6), complex(-20, 0)}
	m, err := rational.FromZPK(zeros, poles, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFitMagnitudeRecoversKnownSpectrum(t *testing.T) {
	ref := knownMinPhase(t)
	omega := logspace(0.01, 200, 150)
	xi := make([]float64, len(omega))
	for i, w := range omega {
		xi[i] = cmplx.Abs(ref.EvalEntry(0, 0, w))
	}
	model, rep, err := FitMagnitude(omega, xi, MagOptions{Order: 4, Iterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RMSRelErr > 1e-4 {
		t.Fatalf("magnitude RMS rel err %v too large", rep.RMSRelErr)
	}
	// The fitted model must be stable and minimum-phase is implied by the
	// construction; verify stability of poles directly.
	if !model.IsStable(0) {
		t.Fatalf("magnitude fit unstable: %v", model.Poles)
	}
}

func TestFitMagnitudePhaseIsMinimumPhase(t *testing.T) {
	// The reconstructed Ξ̃ of a known minimum-phase system should match it
	// up to sign: magnitude data determines a minimum-phase factor
	// uniquely up to ±1.
	ref := knownMinPhase(t)
	omega := logspace(0.01, 200, 150)
	xi := make([]float64, len(omega))
	for i, w := range omega {
		xi[i] = cmplx.Abs(ref.EvalEntry(0, 0, w))
	}
	model, _, err := FitMagnitude(omega, xi, MagOptions{Order: 4, Iterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	// Compare full complex responses (pick the sign from ω smallest).
	h0 := model.EvalEntry(0, 0, omega[0])
	r0 := ref.EvalEntry(0, 0, omega[0])
	sign := 1.0
	if real(h0)*real(r0) < 0 {
		sign = -1
	}
	for _, w := range []float64{0.05, 0.3, 2, 11, 60} {
		got := complex(sign, 0) * model.EvalEntry(0, 0, w)
		want := ref.EvalEntry(0, 0, w)
		if cmplx.Abs(got-want) > 2e-3*(1+cmplx.Abs(want)) {
			t.Fatalf("phase reconstruction off at ω=%v: %v vs %v", w, got, want)
		}
	}
}

func TestFitMagnitudeSensitivityLikeShape(t *testing.T) {
	// A sensitivity-like curve: high plateau at low frequency, deep valley,
	// mild ripple at high frequency — similar to the paper's Fig. 3.
	omega := logspace(2*math.Pi*1e3, 2*math.Pi*2e9, 200)
	xi := make([]float64, len(omega))
	for i, w := range omega {
		f := w / (2 * math.Pi)
		xi[i] = math.Sqrt(1.0/(1+math.Pow(f/1e5, 1.2)) + 1e-4 + 3e-4*math.Exp(-sq(math.Log10(f/3e7))))
	}
	model, rep, err := FitMagnitude(omega, xi, MagOptions{Order: 8, Iterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RMSRelErr > 0.15 {
		t.Fatalf("sensitivity-shape fit too poor: RMS rel %v", rep.RMSRelErr)
	}
	if !model.IsStable(0) {
		t.Fatalf("unstable weight model")
	}
	// All zeros must lie in the closed LHP (minimum phase) — verify via
	// the transfer function having no RHP zeros: evaluate argument
	// principle cheaply by checking |Ξ̃| matches data (already done) and
	// poles stable (above); additionally no pole/zero ended up with
	// positive real part in the assembled ZPK.
	for _, p := range model.Poles {
		if real(p) >= 0 {
			t.Fatalf("pole %v not in LHP", p)
		}
	}
}

func sq(x float64) float64 { return x * x }

func TestFitMagnitudeRejectsBadData(t *testing.T) {
	omega := []float64{1, 2, 3, 4}
	if _, _, err := FitMagnitude(omega, []float64{1, 2, -1, 1}, MagOptions{Order: 2}); err == nil {
		t.Fatalf("negative magnitude accepted")
	}
	if _, _, err := FitMagnitude(omega, []float64{1, 2}, MagOptions{Order: 2}); err == nil {
		t.Fatalf("length mismatch accepted")
	}
	if _, _, err := FitMagnitude(omega, []float64{1, 2, 3, 4}, MagOptions{Order: 0}); err == nil {
		t.Fatalf("zero order accepted")
	}
}

func TestSqrtToLHP(t *testing.T) {
	// u = 4 ⇒ s-root −2; u = −9 (repaired) ⇒ −3; u pair 3±4i ⇒ −(2+i), −(2−i).
	roots, repaired := sqrtToLHP([]complex128{4, -9, complex(3, 4), complex(3, -4)})
	if repaired != 1 {
		t.Fatalf("repaired = %d want 1", repaired)
	}
	if cmplx.Abs(roots[0]+2) > 1e-14 || cmplx.Abs(roots[1]+3) > 1e-14 {
		t.Fatalf("real roots wrong: %v", roots)
	}
	if cmplx.Abs(roots[2]-complex(-2, -1)) > 1e-12 || cmplx.Abs(roots[3]-complex(-2, 1)) > 1e-12 {
		t.Fatalf("complex roots wrong: %v", roots)
	}
}

func BenchmarkFitMagnitudeOrder8(b *testing.B) {
	omega := logspace(2*math.Pi*1e3, 2*math.Pi*2e9, 200)
	xi := make([]float64, len(omega))
	for i, w := range omega {
		f := w / (2 * math.Pi)
		xi[i] = math.Sqrt(1.0/(1+math.Pow(f/1e5, 1.2)) + 1e-4)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := FitMagnitude(omega, xi, MagOptions{Order: 8, Iterations: 20}); err != nil {
			b.Fatal(err)
		}
	}
}
