package vecfit

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"runtime"
	"sync"

	"repro/internal/mat"
	"repro/internal/rational"
)

// Options configures a Vector Fitting run.
type Options struct {
	// NumPoles is the model order n (state dimension of the basis). Complex
	// starting poles are used; an odd order adds one real pole.
	NumPoles int
	// Iterations bounds the pole-relocation sweeps (default 10).
	Iterations int
	// Weights holds one least-squares weight per frequency sample (optional;
	// all ones when nil). This is where the sensitivity weighting w_k = Ξ_k
	// of the paper's eq. (6) enters.
	Weights []float64
	// InitPoles overrides the automatic starting poles.
	InitPoles []complex128
	// Unrelaxed disables the relaxed nontriviality constraint (Gustavsen
	// 2006) and uses the classical σ(s) = 1 + Σc̃φ formulation.
	Unrelaxed bool
	// SkipD omits the constant (direct-coupling) term from the fit.
	SkipD bool
	// FlipMode selects the pole-admissibility reflection (default FlipLHP).
	FlipMode FlipMode
	// Sequential disables the per-response goroutine pool (for tests).
	Sequential bool
	// ConstrainD, when positive, caps the largest singular value of the
	// fitted direct-coupling matrix D at this value (e.g. 0.999 for
	// scattering models that must be asymptotically passive). If the
	// unconstrained D exceeds the cap it is clipped by singular-value
	// truncation and the residues are re-identified with D held fixed, so
	// the compensation is absorbed by the frequency-dependent part of the
	// model (where downstream weighting can shape it) instead of leaving a
	// frequency-flat passivity violation.
	ConstrainD float64
	// PoleTol: relative pole movement below which iteration stops early
	// (default 1e-8).
	PoleTol float64
}

// Report captures convergence diagnostics of a fit.
type Report struct {
	Iterations  int            // pole-relocation sweeps actually run
	FinalPoles  []complex128   // canonical pair order
	PoleHistory [][]complex128 // poles after each sweep
	RMSErr      float64        // weighted RMS fit error over all entries/samples
	MaxAbsErr   float64        // worst-case |H_fit − H_data| over all entries/samples
	DTilde      []float64      // relaxation d̃ per sweep (diagnostic)
	// DConstrained reports that the ConstrainD cap clipped the fitted D.
	DConstrained bool
}

// ErrBadInput reports inconsistent sample dimensions.
var ErrBadInput = errors.New("vecfit: inconsistent input dimensions")

// Fit runs Vector Fitting on matrix samples H[k] (all P×P) at angular
// frequencies omega[k] (rad/s), returning a stable common-pole model with
// real residue structure. The fit minimizes Σ_k w_k²‖H(jω_k) − Ĥ_k‖_F²,
// i.e. the weighted metric (6) of the paper.
func Fit(omega []float64, samples []*mat.CMatrix, opts Options) (*rational.Model, *Report, error) {
	k := len(omega)
	if k == 0 || len(samples) != k {
		return nil, nil, ErrBadInput
	}
	p := samples[0].Rows
	for _, s := range samples {
		if s.Rows != p || s.Cols != p {
			return nil, nil, ErrBadInput
		}
	}
	points := make([]complex128, k)
	for i, w := range omega {
		points[i] = complex(0, w)
	}
	// Flatten responses row-major: r = i*P + j.
	responses := make([][]complex128, p*p)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			row := make([]complex128, k)
			for ki := 0; ki < k; ki++ {
				row[ki] = samples[ki].At(i, j)
			}
			responses[i*p+j] = row
		}
	}
	if opts.InitPoles == nil {
		lo, hi := omegaRange(omega)
		opts.InitPoles = InitialPolesLog(lo, hi, opts.NumPoles)
	}
	poles, cMat, dVec, rep, err := fitCore(points, responses, opts)
	if err != nil {
		return nil, nil, err
	}
	if opts.ConstrainD > 0 {
		weights := opts.Weights
		if weights == nil {
			weights = make([]float64, k)
			for i := range weights {
				weights[i] = 1
			}
		}
		changed, err := constrainD(points, responses, weights, poles, cMat, dVec, p, opts.ConstrainD, opts.Sequential)
		if err != nil {
			return nil, nil, err
		}
		rep.DConstrained = changed
	}
	model, err := assembleModel(p, poles, cMat, dVec)
	if err != nil {
		return nil, nil, err
	}
	fillErrorStats(rep, model, omega, samples, opts.Weights)
	return model, rep, nil
}

func omegaRange(omega []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), 0
	for _, w := range omega {
		if w > 0 && w < lo {
			lo = w
		}
		if w > hi {
			hi = w
		}
	}
	if math.IsInf(lo, 1) {
		lo = 1
	}
	if hi <= 0 {
		hi = lo * 10
	}
	return lo, hi
}

// fitCore is the sample-point-domain engine shared by Fit (points = jω) and
// magnitude VF (points = u real). It returns the final poles, the per-
// response residue coordinate vectors (len n each) and constant terms.
func fitCore(points []complex128, responses [][]complex128, opts Options) ([]complex128, [][]float64, []float64, *Report, error) {
	k := len(points)
	nr := len(responses)
	if opts.NumPoles <= 0 {
		return nil, nil, nil, nil, fmt.Errorf("vecfit: NumPoles must be positive, got %d", opts.NumPoles)
	}
	if opts.NumPoles >= k {
		return nil, nil, nil, nil, fmt.Errorf("vecfit: NumPoles=%d requires more than %d samples", opts.NumPoles, k)
	}
	iters := opts.Iterations
	if iters <= 0 {
		iters = 10
	}
	poleTol := opts.PoleTol
	if poleTol <= 0 {
		poleTol = 1e-8
	}
	weights := opts.Weights
	if weights == nil {
		weights = make([]float64, k)
		for i := range weights {
			weights[i] = 1
		}
	} else if len(weights) != k {
		return nil, nil, nil, nil, ErrBadInput
	}
	poles, _, err := rational.SortPairs(opts.InitPoles, 1e-12)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("vecfit: bad initial poles: %w", err)
	}
	poles = flipPoles(poles, opts.FlipMode)
	n := len(poles)

	rep := &Report{}
	for it := 0; it < iters; it++ {
		cTilde, dTilde, err := sigmaStep(points, responses, weights, poles, opts)
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("vecfit: sweep %d: %w", it, err)
		}
		newPoles, err := relocatePoles(poles, cTilde, dTilde)
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("vecfit: pole relocation sweep %d: %w", it, err)
		}
		newPoles = flipPoles(newPoles, opts.FlipMode)
		move := poleMovement(poles, newPoles)
		poles = newPoles
		rep.Iterations = it + 1
		rep.DTilde = append(rep.DTilde, dTilde)
		rep.PoleHistory = append(rep.PoleHistory, append([]complex128(nil), poles...))
		if move < poleTol {
			break
		}
	}
	rep.FinalPoles = append([]complex128(nil), poles...)

	// Residue identification with the converged poles.
	cMat := make([][]float64, nr)
	dVec := make([]float64, nr)
	phi := basisMatrix(points, poles)
	runParallel(nr, opts.Sequential, func(r int) error {
		c, d, err := residueLS(phi, points, responses[r], weights, opts.SkipD)
		if err != nil {
			return err
		}
		cMat[r] = c
		dVec[r] = d
		return nil
	})
	for r := 0; r < nr; r++ {
		if cMat[r] == nil {
			return nil, nil, nil, nil, fmt.Errorf("vecfit: residue identification failed for response %d", r)
		}
	}
	_ = n
	return poles, cMat, dVec, rep, nil
}

// sigmaStep solves the pole-identification least squares for the sigma
// function coefficients (c̃, d̃) using per-response QR compression.
func sigmaStep(points []complex128, responses [][]complex128, weights []float64, poles []complex128, opts Options) ([]float64, float64, error) {
	n := len(poles)
	phi := basisMatrix(points, poles)
	relaxed := !opts.Unrelaxed
	cT, dT, err := sigmaSolve(phi, points, responses, weights, opts, relaxed)
	if err != nil {
		return nil, 0, err
	}
	if relaxed {
		// Guard against a vanishing relaxation coefficient (degenerate σ):
		// redo the sweep with the classical σ = 1 + Σ c̃φ formulation.
		scale := 0.0
		for _, c := range cT {
			scale += math.Abs(c)
		}
		if math.Abs(dT) < 1e-10*(1+scale) {
			cT, dT, err = sigmaSolve(phi, points, responses, weights, opts, false)
			if err != nil {
				return nil, 0, err
			}
		}
	}
	_ = n
	return cT, dT, nil
}

func sigmaSolve(phi *mat.CMatrix, points []complex128, responses [][]complex128, weights []float64, opts Options, relaxed bool) ([]float64, float64, error) {
	k := len(points)
	n := phi.Cols
	nr := len(responses)
	ncr := n // per-response residue unknowns
	if !opts.SkipD {
		ncr++
	}
	nct := n // shared sigma unknowns
	if relaxed {
		nct++ // d̃
	}
	width := ncr + nct + 1 // + rhs column

	// Per-response compressed blocks: rows of the stacked LS for (c̃[, d̃]).
	type block struct {
		g   *mat.Matrix // nct×nct
		rhs []float64   // nct
	}
	blocks := make([]block, nr)
	err := runParallel(nr, opts.Sequential, func(r int) error {
		h := responses[r]
		m := mat.NewMatrix(2*k, width)
		for ki := 0; ki < k; ki++ {
			w := weights[ki]
			reRow := m.Row(2 * ki)
			imRow := m.Row(2*ki + 1)
			col := 0
			for j := 0; j < n; j++ {
				v := phi.At(ki, j)
				reRow[col] = w * real(v)
				imRow[col] = w * imag(v)
				col++
			}
			if !opts.SkipD {
				reRow[col] = w
				imRow[col] = 0
				col++
			}
			// Sigma block: −H·φ (and −H for d̃).
			for j := 0; j < n; j++ {
				v := -h[ki] * phi.At(ki, j)
				reRow[col] = w * real(v)
				imRow[col] = w * imag(v)
				col++
			}
			if relaxed {
				reRow[col] = -w * real(h[ki])
				imRow[col] = -w * imag(h[ki])
				col++
			}
			// RHS: zero when relaxed (homogeneous); +H when σ = 1 + Σc̃φ.
			if !relaxed {
				reRow[col] = w * real(h[ki])
				imRow[col] = w * imag(h[ki])
			}
		}
		s := mat.QRCompressR(m, ncr) // (nct+1)×(nct+1)
		g := mat.NewMatrix(nct, nct)
		rhs := make([]float64, nct)
		for i := 0; i < nct; i++ {
			for j := 0; j < nct; j++ {
				g.Set(i, j, s.At(i, j))
			}
			rhs[i] = s.At(i, nct)
		}
		blocks[r] = block{g: g, rhs: rhs}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}

	rows := nr * nct
	if relaxed {
		rows++
	}
	big := mat.NewMatrix(rows, nct)
	rhs := make([]float64, rows)
	for r := 0; r < nr; r++ {
		for i := 0; i < nct; i++ {
			copy(big.Row(r*nct+i), blocks[r].g.Row(i))
			rhs[r*nct+i] = blocks[r].rhs[i]
		}
	}
	if relaxed {
		// Nontriviality row: Σ_k Re{σ(s_k)} = K, scaled to the data norm
		// so it neither dominates nor vanishes.
		scale := 0.0
		for r := 0; r < nr; r++ {
			for ki := 0; ki < k; ki++ {
				v := weights[ki] * cmplx.Abs(responses[r][ki])
				scale += v * v
			}
		}
		scale = math.Sqrt(scale) / float64(k)
		row := big.Row(rows - 1)
		for j := 0; j < n; j++ {
			sum := 0.0
			for ki := 0; ki < k; ki++ {
				sum += real(phi.At(ki, j))
			}
			row[j] = scale * sum
		}
		row[n] = scale * float64(k)
		rhs[rows-1] = scale * float64(k)
	}
	sol, err := mat.LeastSquares(big, rhs)
	if err != nil {
		return nil, 0, fmt.Errorf("vecfit: sigma LS failed: %w", err)
	}
	cT := sol[:n]
	dT := 1.0
	if relaxed {
		dT = sol[n]
	}
	return cT, dT, nil
}

// residueLS solves the per-response residue identification with fixed poles.
func residueLS(phi *mat.CMatrix, points []complex128, h []complex128, weights []float64, skipD bool) ([]float64, float64, error) {
	k := len(points)
	n := phi.Cols
	nc := n
	if !skipD {
		nc++
	}
	m := mat.NewMatrix(2*k, nc)
	rhs := make([]float64, 2*k)
	for ki := 0; ki < k; ki++ {
		w := weights[ki]
		reRow := m.Row(2 * ki)
		imRow := m.Row(2*ki + 1)
		for j := 0; j < n; j++ {
			v := phi.At(ki, j)
			reRow[j] = w * real(v)
			imRow[j] = w * imag(v)
		}
		if !skipD {
			reRow[n] = w
			imRow[n] = 0
		}
		rhs[2*ki] = w * real(h[ki])
		rhs[2*ki+1] = w * imag(h[ki])
	}
	sol, err := mat.LeastSquares(m, rhs)
	if err != nil {
		return nil, 0, err
	}
	c := sol[:n]
	d := 0.0
	if !skipD {
		d = sol[n]
	}
	return c, d, nil
}

// assembleModel packs per-response residue coordinates into a matrix model.
func assembleModel(p int, poles []complex128, cMat [][]float64, dVec []float64) (*rational.Model, error) {
	n := len(poles)
	residues := make([]*mat.CMatrix, n)
	for m := 0; m < n; m++ {
		residues[m] = mat.NewCMatrix(p, p)
	}
	d := mat.NewMatrix(p, p)
	model, err := rational.New(poles, residues, d)
	if err != nil {
		return nil, err
	}
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			r := i*p + j
			model.SetCVector(i, j, cMat[r])
			d.Set(i, j, dVec[r])
		}
	}
	return model, nil
}

func fillErrorStats(rep *Report, model *rational.Model, omega []float64, samples []*mat.CMatrix, weights []float64) {
	p := model.Ports()
	var sum, wsum float64
	maxErr := 0.0
	for ki, w := range omega {
		wk := 1.0
		if weights != nil {
			wk = weights[ki]
		}
		h := model.Eval(w)
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				e := cmplx.Abs(h.At(i, j) - samples[ki].At(i, j))
				if e > maxErr {
					maxErr = e
				}
				sum += wk * wk * e * e
				wsum += wk * wk
			}
		}
	}
	if wsum > 0 {
		rep.RMSErr = math.Sqrt(sum / wsum)
	}
	rep.MaxAbsErr = maxErr
}

func poleMovement(old, cur []complex128) float64 {
	if len(old) != len(cur) {
		return math.Inf(1)
	}
	mx := 0.0
	for i := range old {
		d := cmplx.Abs(cur[i]-old[i]) / (1 + cmplx.Abs(old[i]))
		if d > mx {
			mx = d
		}
	}
	return mx
}

// runParallel executes fn(i) for i in [0,n), using a worker pool unless
// sequential execution is requested. The first error wins.
func runParallel(n int, sequential bool, fn func(int) error) error {
	if sequential || n < 2 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs error
		next int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if errs == nil {
						errs = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return errs
}

// constrainD enforces σmax(D) ≤ cap on the assembled per-response constant
// terms by singular-value clipping followed by residue re-identification
// with the clipped D fixed. Returns true if anything changed.
func constrainD(points []complex128, responses [][]complex128, weights []float64,
	poles []complex128, cMat [][]float64, dVec []float64, p int, cap float64, sequential bool) (bool, error) {
	d := mat.NewMatrix(p, p)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			d.Set(i, j, dVec[i*p+j])
		}
	}
	svd := mat.SVDecompose(d)
	if len(svd.S) == 0 || svd.S[0] <= cap {
		return false, nil
	}
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			s := 0.0
			for k := 0; k < len(svd.S); k++ {
				sv := svd.S[k]
				if sv > cap {
					sv = cap
				}
				s += svd.U.At(i, k) * sv * svd.V.At(j, k)
			}
			dVec[i*p+j] = s
		}
	}
	phi := basisMatrix(points, poles)
	k := len(points)
	err := runParallel(len(responses), sequential, func(r int) error {
		adj := make([]complex128, k)
		for ki := 0; ki < k; ki++ {
			adj[ki] = responses[r][ki] - complex(dVec[r], 0)
		}
		c, _, err := residueLS(phi, points, adj, weights, true)
		if err != nil {
			return err
		}
		cMat[r] = c
		return nil
	})
	return true, err
}
