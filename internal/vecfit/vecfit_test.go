package vecfit

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/rational"
)

// logspace returns n log-spaced angular frequencies over [lo, hi].
func logspace(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		t := float64(i) / float64(n-1)
		out[i] = lo * math.Pow(hi/lo, t)
	}
	return out
}

// sampleModel evaluates a model over a frequency grid.
func sampleModel(m *rational.Model, omega []float64) []*mat.CMatrix {
	out := make([]*mat.CMatrix, len(omega))
	for i, w := range omega {
		out[i] = m.Eval(w)
	}
	return out
}

// referenceModel2 builds a well-separated 2-port test model with 4 poles.
func referenceModel2(t *testing.T) *rational.Model {
	t.Helper()
	poles := []complex128{
		complex(-0.8, 0),
		complex(-0.05, 1), complex(-0.05, -1),
		complex(-2, 20),
	}
	// Fix pairing: the last pole needs its conjugate.
	poles = append(poles, cmplx.Conj(poles[3]))
	r0 := mat.NewCMatrixFrom([][]complex128{{0.5, 0.1}, {0.1, 0.3}})
	r1 := mat.NewCMatrixFrom([][]complex128{{0.2 + 0.1i, -0.05 + 0.02i}, {-0.05 + 0.02i, 0.15 - 0.08i}})
	r1c := r1.Clone()
	for i := range r1c.Data {
		r1c.Data[i] = cmplx.Conj(r1c.Data[i])
	}
	r2 := mat.NewCMatrixFrom([][]complex128{{1 + 2i, 0.3 - 0.4i}, {0.3 - 0.4i, 2 + 1i}})
	r2c := r2.Clone()
	for i := range r2c.Data {
		r2c.Data[i] = cmplx.Conj(r2c.Data[i])
	}
	d := mat.NewMatrixFrom([][]float64{{0.02, 0.005}, {0.005, 0.04}})
	m, err := rational.New(poles, []*mat.CMatrix{r0, r1, r1c, r2, r2c}, d)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFitRecoversKnownModel(t *testing.T) {
	ref := referenceModel2(t)
	omega := logspace(0.01, 100, 200)
	samples := sampleModel(ref, omega)
	model, rep, err := Fit(omega, samples, Options{NumPoles: 5, Iterations: 15})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RMSErr > 1e-8 {
		t.Fatalf("RMS error %v too large for exact-order fit", rep.RMSErr)
	}
	// Poles must match the reference set.
	for _, p := range ref.Poles {
		found := false
		for _, q := range model.Poles {
			if cmplx.Abs(p-q) < 1e-5*(1+cmplx.Abs(p)) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("pole %v not recovered; got %v", p, model.Poles)
		}
	}
	// And the model must be stable.
	if !model.IsStable(0) {
		t.Fatalf("fit produced unstable model")
	}
}

func TestFitScalarResponse(t *testing.T) {
	ref, err := rational.NewScalar(
		[]complex128{complex(-1, 3), complex(-1, -3)},
		[]complex128{complex(0.5, 1), complex(0.5, -1)},
		0.1,
	)
	if err != nil {
		t.Fatal(err)
	}
	omega := logspace(0.1, 30, 80)
	samples := sampleModel(ref, omega)
	model, rep, err := Fit(omega, samples, Options{NumPoles: 2, Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RMSErr > 1e-9 {
		t.Fatalf("scalar RMS %v", rep.RMSErr)
	}
	if model.Ports() != 1 {
		t.Fatalf("ports %d", model.Ports())
	}
}

func TestFitOddOrderIncludesRealPole(t *testing.T) {
	ref := referenceModel2(t)
	omega := logspace(0.01, 100, 150)
	samples := sampleModel(ref, omega)
	model, _, err := Fit(omega, samples, Options{NumPoles: 5, Iterations: 12})
	if err != nil {
		t.Fatal(err)
	}
	hasReal := false
	for _, p := range model.Poles {
		if imag(p) == 0 {
			hasReal = true
		}
	}
	if !hasReal {
		t.Fatalf("odd-order fit should retain a real pole, got %v", model.Poles)
	}
}

func TestFitWithNoiseStaysStable(t *testing.T) {
	ref := referenceModel2(t)
	omega := logspace(0.01, 100, 120)
	samples := sampleModel(ref, omega)
	rng := rand.New(rand.NewSource(80))
	for _, s := range samples {
		for i := range s.Data {
			s.Data[i] += complex(1e-3*rng.NormFloat64(), 1e-3*rng.NormFloat64())
		}
	}
	model, rep, err := Fit(omega, samples, Options{NumPoles: 7, Iterations: 12})
	if err != nil {
		t.Fatal(err)
	}
	if !model.IsStable(0) {
		t.Fatalf("noisy fit lost stability: %v", model.Poles)
	}
	if rep.RMSErr > 1e-2 {
		t.Fatalf("noisy RMS too large: %v", rep.RMSErr)
	}
}

func TestWeightedFitRedistributesError(t *testing.T) {
	// Under-resolved fit (order below truth) with heavy low-frequency
	// weights must beat the unweighted fit at low frequency.
	ref := referenceModel2(t)
	omega := logspace(0.01, 100, 160)
	samples := sampleModel(ref, omega)
	flat, _, err := Fit(omega, samples, Options{NumPoles: 3, Iterations: 12})
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, len(omega))
	for i, om := range omega {
		if om < 0.5 {
			w[i] = 100
		} else {
			w[i] = 1
		}
	}
	weighted, _, err := Fit(omega, samples, Options{NumPoles: 3, Iterations: 12, Weights: w})
	if err != nil {
		t.Fatal(err)
	}
	lowErr := func(m *rational.Model) float64 {
		sum := 0.0
		cnt := 0
		for i, om := range omega {
			if om >= 0.5 {
				continue
			}
			h := m.Eval(om)
			for j := range h.Data {
				e := cmplx.Abs(h.Data[j] - samples[i].Data[j])
				sum += e * e
				cnt++
			}
		}
		return math.Sqrt(sum / float64(cnt))
	}
	le := lowErr(weighted)
	lf := lowErr(flat)
	if le > lf {
		t.Fatalf("weighted low-freq error %v should not exceed unweighted %v", le, lf)
	}
}

func TestUnrelaxedMode(t *testing.T) {
	ref := referenceModel2(t)
	omega := logspace(0.01, 100, 150)
	samples := sampleModel(ref, omega)
	model, rep, err := Fit(omega, samples, Options{NumPoles: 5, Iterations: 20, Unrelaxed: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RMSErr > 1e-6 {
		t.Fatalf("unrelaxed RMS %v", rep.RMSErr)
	}
	if !model.IsStable(0) {
		t.Fatalf("unrelaxed unstable")
	}
}

func TestFitSequentialMatchesParallel(t *testing.T) {
	ref := referenceModel2(t)
	omega := logspace(0.01, 100, 100)
	samples := sampleModel(ref, omega)
	mp, _, err := Fit(omega, samples, Options{NumPoles: 5, Iterations: 8})
	if err != nil {
		t.Fatal(err)
	}
	ms, _, err := Fit(omega, samples, Options{NumPoles: 5, Iterations: 8, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range mp.Poles {
		if cmplx.Abs(p-ms.Poles[i]) > 1e-9*(1+cmplx.Abs(p)) {
			t.Fatalf("parallel/sequential poles differ: %v vs %v", mp.Poles, ms.Poles)
		}
	}
}

func TestFitErrorsOnBadInput(t *testing.T) {
	if _, _, err := Fit(nil, nil, Options{NumPoles: 2}); err == nil {
		t.Fatalf("empty input accepted")
	}
	omega := []float64{1, 2, 3}
	samples := []*mat.CMatrix{mat.NewCMatrix(2, 2), mat.NewCMatrix(2, 2), mat.NewCMatrix(1, 1)}
	if _, _, err := Fit(omega, samples, Options{NumPoles: 1}); err == nil {
		t.Fatalf("ragged samples accepted")
	}
	ok := []*mat.CMatrix{mat.NewCMatrix(1, 1), mat.NewCMatrix(1, 1), mat.NewCMatrix(1, 1)}
	if _, _, err := Fit(omega, ok, Options{NumPoles: 5}); err == nil {
		t.Fatalf("order ≥ samples accepted")
	}
}

func TestInitialPolesLog(t *testing.T) {
	p := InitialPolesLog(1, 1000, 6)
	if len(p) != 6 {
		t.Fatalf("want 6 poles, got %d", len(p))
	}
	for i := 0; i < 6; i += 2 {
		if imag(p[i]) <= 0 || p[i+1] != cmplx.Conj(p[i]) {
			t.Fatalf("pole pairing broken: %v", p)
		}
		if real(p[i]) >= 0 {
			t.Fatalf("initial poles must be stable: %v", p[i])
		}
	}
	podd := InitialPolesLog(1, 1000, 5)
	if len(podd) != 5 || imag(podd[0]) != 0 {
		t.Fatalf("odd order should start with a real pole: %v", podd)
	}
}

func TestFlipPoles(t *testing.T) {
	in := []complex128{complex(2, 5), complex(2, -5), complex(-1, 0)}
	out := flipPoles(in, FlipLHP)
	if real(out[0]) != -2 || out[1] != cmplx.Conj(out[0]) {
		t.Fatalf("FlipLHP wrong: %v", out)
	}
	in2 := []complex128{complex(-3, 0), complex(4, 0)}
	out2 := flipPoles(in2, FlipOffNegReal)
	if real(out2[0]) != 3 || real(out2[1]) != 4 {
		t.Fatalf("FlipOffNegReal wrong: %v", out2)
	}
}

func BenchmarkFitMIMO4Port(b *testing.B) {
	poles := []complex128{
		complex(-0.8, 0),
		complex(-0.05, 1), complex(-0.05, -1),
		complex(-2, 20), complex(-2, -20),
	}
	rng := rand.New(rand.NewSource(81))
	p := 4
	res := make([]*mat.CMatrix, len(poles))
	res[0] = randSymC(rng, p, 0)
	r1 := randSymC(rng, p, 1)
	res[1], res[2] = r1, conjC(r1)
	r2 := randSymC(rng, p, 1)
	res[3], res[4] = r2, conjC(r2)
	d := mat.NewMatrix(p, p)
	for i := 0; i < p; i++ {
		d.Set(i, i, 0.05)
	}
	ref, err := rational.New(poles, res, d)
	if err != nil {
		b.Fatal(err)
	}
	omega := logspace(0.01, 100, 120)
	samples := sampleModel(ref, omega)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Fit(omega, samples, Options{NumPoles: 5, Iterations: 6}); err != nil {
			b.Fatal(err)
		}
	}
}

func randSymC(rng *rand.Rand, p int, im float64) *mat.CMatrix {
	m := mat.NewCMatrix(p, p)
	for i := 0; i < p; i++ {
		for j := i; j < p; j++ {
			v := complex(rng.NormFloat64(), im*rng.NormFloat64())
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func conjC(m *mat.CMatrix) *mat.CMatrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] = cmplx.Conj(out.Data[i])
	}
	return out
}
