package vecfit

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/mat"
	"repro/internal/rational"
)

// MagOptions configures Magnitude Vector Fitting.
type MagOptions struct {
	// Order is the number of poles n_w of the minimum-phase weight model
	// (the paper uses n_w = 8 for its sensitivity weight).
	Order int
	// Iterations bounds the pole relocation sweeps (default 20; the
	// u-domain fit converges more slowly than jω-axis VF).
	Iterations int
	// Weights optionally weights the squared-magnitude samples.
	Weights []float64
}

// MagReport captures diagnostics of a magnitude fit.
type MagReport struct {
	// RMSRelErr is the relative RMS error of |Ξ̃(jω_k)| against the data.
	RMSRelErr float64
	// MaxRelErr is the worst-case relative magnitude error.
	MaxRelErr float64
	// Repaired counts poles/zeros that had to be reflected off the
	// negative-real u-axis (fit artifacts from data dipping toward zero).
	Repaired int
	// Fit is the underlying u-domain fit report.
	Fit *Report
}

// ErrMagnitudeData reports unusable magnitude samples.
var ErrMagnitudeData = errors.New("vecfit: magnitude data must be positive")

// FitMagnitude fits a stable minimum-phase rational model Ξ̃(s) such that
// |Ξ̃(jω_k)|² ≈ xi[k]², following the Magnitude Vector Fitting approach
// (paper eq. 17): the even spectrum G(s) = Ξ̃(s)Ξ̃(−s) is a rational
// function of u = s², so a standard VF run in the u-domain on samples
// (u_k = −ω_k², xi_k²) identifies poles a_m = q_m² and, via the companion
// eigenproblem, zeros ζ_m = z_m². The minimum-phase spectral factor keeps
// the left-half-plane square roots: Ξ̃(s) = √d·Π(s+z_m)/Π(s+q_m).
func FitMagnitude(omega []float64, xi []float64, opts MagOptions) (*rational.Model, *MagReport, error) {
	k := len(omega)
	if k == 0 || len(xi) != k {
		return nil, nil, ErrBadInput
	}
	if opts.Order <= 0 {
		return nil, nil, fmt.Errorf("vecfit: magnitude fit order must be positive, got %d", opts.Order)
	}
	// Normalize frequencies to the geometric band center: PDN sensitivity
	// data spans many decades (kHz–GHz), i.e. >20 decades in u = s², which
	// would wreck the least-squares conditioning. The fit runs on
	// ω' = ω/ωs; poles and zeros are scaled back by ωs at assembly (the
	// gain of a biproper factor is scale-invariant).
	loRaw, hiRaw := omegaRange(omega)
	ws := math.Sqrt(loRaw * hiRaw)
	points := make([]complex128, k)
	data := make([]complex128, k)
	maxF := 0.0
	for i := range omega {
		if xi[i] <= 0 {
			return nil, nil, ErrMagnitudeData
		}
		wn := omega[i] / ws
		points[i] = complex(-wn*wn, 0)
		f := xi[i] * xi[i]
		data[i] = complex(f, 0)
		if f > maxF {
			maxF = f
		}
	}
	iters := opts.Iterations
	if iters <= 0 {
		iters = 20
	}
	// Default to inverse-magnitude (relative-error) weighting: magnitude
	// data lives on a dB scale, and the valleys matter as much as the
	// plateaus for the sensitivity weight.
	weights := opts.Weights
	if weights == nil {
		weights = make([]float64, k)
		for i := range weights {
			weights[i] = 1 / real(data[i])
		}
	}
	lo, hi := loRaw/ws, hiRaw/ws
	copts := Options{
		NumPoles:   opts.Order,
		Iterations: iters,
		Weights:    weights,
		InitPoles:  InitialPolesRealLog(lo*lo, hi*hi, opts.Order),
		FlipMode:   FlipOffNegReal,
	}
	uPoles, cMat, dVec, fitRep, err := fitCore(points, [][]complex128{data}, copts)
	if err != nil {
		return nil, nil, fmt.Errorf("vecfit: magnitude u-domain fit: %w", err)
	}
	c := cMat[0]
	d := dVec[0]
	repaired := 0
	n := len(uPoles)

	// Two factorization branches depending on the relative degree of the
	// fitted spectrum G(u) = d + Σ r_m/(u−a_m):
	//
	//   biproper (d > 0):        Ξ̃ has n zeros; gain = √d; zeros of G from
	//                            the companion eigenproblem.
	//   strictly proper (d ≈ 0): Ξ̃ has n−1 zeros and relative degree 1;
	//                            G ~ (Σr)/u as u→∞ with Σr = −gain², and
	//                            the n−1 finite zeros are the roots of the
	//                            numerator polynomial Σ_m r_m·Π_{l≠m}(u−a_l).
	var uZeros []complex128
	var gain float64
	if d > 1e-9*maxF {
		a1, b1 := rational.BasisFromPoles(uPoles)
		zm := a1.Clone()
		for i := 0; i < n; i++ {
			if b1[i] == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				zm.Set(i, j, zm.At(i, j)-b1[i]*c[j]/d)
			}
		}
		ev, err := mat.EigenValues(zm)
		if err != nil {
			return nil, nil, fmt.Errorf("vecfit: magnitude zero extraction: %w", err)
		}
		uZeros = ev
		gain = math.Sqrt(d)
	} else {
		// Refit the residues without a constant term so the strictly
		// proper structure is exact, then factor the numerator.
		if d != 0 {
			phi := basisMatrix(points, uPoles)
			c2, _, err := residueLS(phi, points, data, weights, true)
			if err != nil {
				return nil, nil, fmt.Errorf("vecfit: strictly-proper refit: %w", err)
			}
			c = c2
		}
		residues := coordsToResidues(uPoles, c)
		var sumR complex128
		for _, r := range residues {
			sumR += r
		}
		if real(sumR) >= 0 {
			return nil, nil, fmt.Errorf("vecfit: spectrum leading coefficient %v not negative; cannot factor", sumR)
		}
		gain = math.Sqrt(-real(sumR))
		numCoef := numeratorPoly(uPoles, residues)
		ev, err := polyRoots(numCoef)
		if err != nil {
			return nil, nil, fmt.Errorf("vecfit: numerator roots: %w", err)
		}
		uZeros = ev
	}
	uZeros, _, err = rational.SortPairs(uZeros, 1e-8)
	if err != nil {
		return nil, nil, fmt.Errorf("vecfit: magnitude zero pairing: %w", err)
	}

	sPoles, rp := sqrtToLHP(uPoles)
	repaired += rp
	sZeros, rz := sqrtToLHP(uZeros)
	repaired += rz
	// Undo the frequency normalization. A biproper factor's gain is scale
	// invariant; a relative-degree-1 factor picks up one power of ws.
	for i := range sPoles {
		sPoles[i] *= complex(ws, 0)
	}
	for i := range sZeros {
		sZeros[i] *= complex(ws, 0)
	}
	if len(sZeros) < len(sPoles) {
		gain *= math.Pow(ws, float64(len(sPoles)-len(sZeros)))
	}

	model, err := rational.FromZPK(sZeros, sPoles, gain)
	if err != nil {
		return nil, nil, fmt.Errorf("vecfit: spectral factor assembly: %w", err)
	}

	rep := &MagReport{Repaired: repaired, Fit: fitRep}
	var sum float64
	for i, w := range omega {
		g := cmplx.Abs(model.EvalEntry(0, 0, w))
		rel := math.Abs(g-xi[i]) / xi[i]
		sum += rel * rel
		if rel > rep.MaxRelErr {
			rep.MaxRelErr = rel
		}
	}
	rep.RMSRelErr = math.Sqrt(sum / float64(k))
	return model, rep, nil
}

// coordsToResidues converts a residue coordinate vector (the [Re, Im]
// pair-slot convention of rational.Model) back into per-pole complex
// residues aligned with the pole list.
func coordsToResidues(poles []complex128, c []float64) []complex128 {
	out := make([]complex128, len(poles))
	for k := 0; k < len(poles); {
		if imag(poles[k]) == 0 {
			out[k] = complex(c[k], 0)
			k++
			continue
		}
		out[k] = complex(c[k], c[k+1])
		out[k+1] = complex(c[k], -c[k+1])
		k += 2
	}
	return out
}

// numeratorPoly expands N(u) = Σ_m r_m·Π_{l≠m}(u−a_l) into ascending real
// coefficients (degree n−1). Conjugate-closed poles/residues guarantee the
// imaginary parts cancel.
func numeratorPoly(poles, residues []complex128) []float64 {
	n := len(poles)
	acc := make([]complex128, n) // degree n−1 ⇒ n coefficients
	term := make([]complex128, 0, n)
	for m := 0; m < n; m++ {
		// Build Π_{l≠m}(u − a_l) incrementally.
		term = term[:1]
		term[0] = 1
		for l := 0; l < n; l++ {
			if l == m {
				continue
			}
			term = polyMulLinear(term, -poles[l])
		}
		for i, t := range term {
			acc[i] += residues[m] * t
		}
	}
	out := make([]float64, n)
	for i, z := range acc {
		out[i] = real(z)
	}
	return out
}

// polyMulLinear multiplies the ascending-coefficient polynomial p by
// (u + c0), growing it by one degree.
func polyMulLinear(p []complex128, c0 complex128) []complex128 {
	out := make([]complex128, len(p)+1)
	for i, v := range p {
		out[i] += v * c0
		out[i+1] += v
	}
	return out
}

// polyRoots returns the roots of a real polynomial with ascending
// coefficients via the companion-matrix eigenproblem.
func polyRoots(coef []float64) ([]complex128, error) {
	// Trim trailing (leading-degree) zeros.
	deg := len(coef) - 1
	for deg > 0 && coef[deg] == 0 {
		deg--
	}
	if deg <= 0 {
		return nil, nil
	}
	comp := mat.NewMatrix(deg, deg)
	lead := coef[deg]
	for i := 1; i < deg; i++ {
		comp.Set(i, i-1, 1)
	}
	for i := 0; i < deg; i++ {
		comp.Set(i, deg-1, -coef[i]/lead)
	}
	return mat.EigenValues(comp)
}

// sqrtToLHP maps u-domain roots ζ = z² to left-half-plane s-domain roots
// −z with Re(z) ≥ 0, preserving conjugate pairing. Roots on the closed
// negative real u-axis cannot be split into a real spectral factor; those
// are repaired by substituting the magnitude-equivalent real root √|ζ|
// (returned count reports how many).
func sqrtToLHP(uRoots []complex128) ([]complex128, int) {
	out := make([]complex128, 0, len(uRoots))
	repaired := 0
	for i := 0; i < len(uRoots); {
		r := uRoots[i]
		if imag(r) == 0 {
			v := real(r)
			if v < 0 {
				// Fit artifact: |Ξ|² should not vanish on the data axis.
				repaired++
				v = -v
			}
			out = append(out, complex(-math.Sqrt(v), 0))
			i++
			continue
		}
		z := cmplx.Sqrt(r) // principal: Re ≥ 0
		if real(z) == 0 {
			z += complex(1e-12*cmplx.Abs(z), 0)
			repaired++
		}
		out = append(out, -z, -cmplx.Conj(z))
		i += 2
	}
	return out, repaired
}
