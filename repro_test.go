package repro_test

import (
	"math"
	"math/cmplx"
	"os"
	"path/filepath"
	"testing"

	repro "repro"
)

// smallData caches an 8-port synthetic dataset for the API tests.
var smallData = func() *repro.SyntheticPDN {
	freqs := repro.LogFreqGrid(1e3, 2e9, 100, true)
	syn, err := repro.GeneratePDN(repro.PDNSmall, freqs, 50)
	if err != nil {
		panic(err)
	}
	return syn
}()

func TestLogFreqGrid(t *testing.T) {
	g := repro.LogFreqGrid(1e3, 1e6, 4, true)
	want := []float64{0, 1e3, 1e4, 1e5, 1e6}
	if len(g) != len(want) {
		t.Fatalf("len %d want %d", len(g), len(want))
	}
	for i := range want {
		if math.Abs(g[i]-want[i]) > 1e-6*want[i] {
			t.Fatalf("grid %v want %v", g, want)
		}
	}
}

func TestSDataValidation(t *testing.T) {
	if _, err := repro.NewSData(nil, nil, 50); err == nil {
		t.Fatalf("empty data accepted")
	}
	d, err := repro.NewSData(
		[]float64{1, 2},
		[][][]complex128{
			{{0.1, 0}, {0, 0.1}},
			{{0.2, 0}, {0, 0.2}},
		}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if d.Ports() != 2 || d.Points() != 2 {
		t.Fatalf("dims wrong")
	}
	if d.At(1, 0, 0) != 0.2 {
		t.Fatalf("At wrong")
	}
	om := d.Omega()
	if math.Abs(om[1]-4*math.Pi) > 1e-12 {
		t.Fatalf("Omega conversion wrong: %v", om)
	}
}

func TestEndToEndExtractSmall(t *testing.T) {
	res, err := repro.Extract(smallData.Data, smallData.Load, repro.ExtractOptions{
		NumPoles:     10,
		VFIterations: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Model == nil || res.Weight == nil || res.Fit == nil {
		t.Fatalf("missing artifacts in result")
	}
	if !res.Model.IsStable() {
		t.Fatalf("extracted model unstable")
	}
	chk, err := repro.CheckPassivity(res.Model, repro.CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !chk.Passive {
		t.Fatalf("extracted model not passive: σmax=%v", chk.MaxSigma)
	}
	// The non-passive snapshot must differ from the final model when
	// enforcement ran.
	if res.Enforcement != nil && res.Enforcement.Iterations > 0 {
		same := true
		for _, f := range []float64{1e5, 1e7, 1e9} {
			if cmplx.Abs(res.Model.EvalEntry(0, 0, f)-res.NonPassive.EvalEntry(0, 0, f)) > 1e-15 {
				same = false
			}
		}
		if same {
			t.Fatalf("enforcement reported iterations but model unchanged")
		}
	}
	// Scattering accuracy survives the flow.
	if rms := res.Model.RMSError(smallData.Data); rms > 0.05 {
		t.Fatalf("final model RMS too large: %v", rms)
	}
}

func TestExtractUnweightedBaseline(t *testing.T) {
	res, err := repro.Extract(smallData.Data, smallData.Load, repro.ExtractOptions{
		NumPoles:              10,
		VFIterations:          8,
		UnweightedFit:         true,
		UnweightedEnforcement: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight != nil || res.Sensitivity != nil {
		t.Fatalf("unweighted flow should not build a weight")
	}
	chk, err := repro.CheckPassivity(res.Model, repro.CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !chk.Passive {
		t.Fatalf("baseline flow must still produce a passive model")
	}
}

func TestMacromodelJSONRoundTrip(t *testing.T) {
	m, _, err := repro.Fit(smallData.Data, repro.FitOptions{NumPoles: 8, Iterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := repro.LoadMacromodel(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Ports() != m.Ports() || back.NumPoles() != m.NumPoles() || back.R0() != m.R0() {
		t.Fatalf("metadata lost in round trip")
	}
	for _, f := range []float64{0, 1e4, 1e7, 2e9} {
		a := m.EvalEntry(1, 0, f)
		b := back.EvalEntry(1, 0, f)
		if cmplx.Abs(a-b) > 1e-12*(1+cmplx.Abs(a)) {
			t.Fatalf("round trip changed response at %v: %v vs %v", f, a, b)
		}
	}
}

func TestMacromodelJSONRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte(`{"poles": [[1,2]], "residues": [], "d": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := repro.LoadMacromodel(path); err == nil {
		t.Fatalf("inconsistent JSON accepted")
	}
}

func TestTouchstoneFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pdn.s8p")
	if err := repro.WriteTouchstone(path, smallData.Data); err != nil {
		t.Fatal(err)
	}
	back, err := repro.ReadTouchstone(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if back.Ports() != smallData.Data.Ports() || back.Points() != smallData.Data.Points() {
		t.Fatalf("round trip dims wrong")
	}
	for k := range back.S {
		if !back.S[k].Equalish(smallData.Data.S[k], 1e-9) {
			t.Fatalf("round trip data mismatch at %d", k)
		}
	}
}

func TestTargetImpedanceModelConsistency(t *testing.T) {
	// TargetImpedanceModel(model, freqs) must equal TargetImpedance on the
	// model's own sampled data.
	m, _, err := repro.Fit(smallData.Data, repro.FitOptions{NumPoles: 10, Iterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	freqs := []float64{1e4, 1e6, 1e8, 1e9}
	zm, err := repro.TargetImpedanceModel(m, freqs, smallData.Load)
	if err != nil {
		t.Fatal(err)
	}
	sampled := m.Sample(freqs)
	zd, err := repro.TargetImpedance(sampled, smallData.Load)
	if err != nil {
		t.Fatal(err)
	}
	for i := range zm {
		if cmplx.Abs(zm[i]-zd[i]) > 1e-10*(1+cmplx.Abs(zd[i])) {
			t.Fatalf("inconsistent Z at %v: %v vs %v", freqs[i], zm[i], zd[i])
		}
	}
}

func TestSensitivityAPIs(t *testing.T) {
	xi, err := repro.Sensitivity(smallData.Data, smallData.Load)
	if err != nil {
		t.Fatal(err)
	}
	if len(xi) != smallData.Data.Points() {
		t.Fatalf("length mismatch")
	}
	for i, v := range xi {
		if v <= 0 || math.IsNaN(v) {
			t.Fatalf("bad sensitivity %v at %d", v, i)
		}
	}
	w, xi2, err := repro.BuildWeight(smallData.Data, smallData.Load, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xi {
		if xi[i] != xi2[i] {
			t.Fatalf("BuildWeight returned different samples")
		}
	}
	if w.Order() != 8 {
		t.Fatalf("weight order %d want 8", w.Order())
	}
	for _, f := range []float64{1e3, 1e6, 1e9} {
		if w.Eval(f) <= 0 {
			t.Fatalf("weight must be positive")
		}
	}
}

func TestGeneratePDNPresets(t *testing.T) {
	freqs := repro.LogFreqGrid(1e4, 1e9, 10, false)
	small, err := repro.GeneratePDN(repro.PDNSmall, freqs, 50)
	if err != nil {
		t.Fatal(err)
	}
	if small.Data.Ports() != 8 {
		t.Fatalf("small preset ports %d want 8", small.Data.Ports())
	}
	if len(small.Roles) != 8 {
		t.Fatalf("roles missing")
	}
	if _, err := repro.GeneratePDN(repro.PDNPreset(99), freqs, 50); err == nil {
		t.Fatalf("bad preset accepted")
	}
	// Raw data must be passive.
	for _, sv := range small.Data.MaxSingularValues() {
		if sv > 1+1e-8 {
			t.Fatalf("raw data not passive: %v", sv)
		}
	}
}

func TestEnforceStandardVsWeightedBothPassive(t *testing.T) {
	xi, err := repro.Sensitivity(smallData.Data, smallData.Load)
	if err != nil {
		t.Fatal(err)
	}
	m0, _, err := repro.Fit(smallData.Data, repro.FitOptions{
		NumPoles: 10, Iterations: 8, Weights: xi, ConstrainD: 0.999,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, _, err := repro.BuildWeight(smallData.Data, smallData.Load, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, weight := range []*repro.Weight{nil, w} {
		m := m0.Clone()
		rep, err := repro.EnforcePassivity(m, repro.EnforceOptions{
			Check:  repro.CheckOptions{ForceSweep: true, FreqMin: 500, FreqMax: 4e9},
			Weight: weight,
			ClampD: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Passive {
			t.Fatalf("enforcement (weighted=%v) failed", weight != nil)
		}
	}
}

func TestFitWithRefinementImprovesLoadedAccuracy(t *testing.T) {
	freqs := repro.LogFreqGrid(1e3, 2e9, 50, true)
	syn, err := repro.GeneratePDN(repro.PDNSmall, freqs, 50)
	if err != nil {
		t.Fatal(err)
	}
	model, rep, err := repro.FitWithRefinement(syn.Data, syn.Load, repro.FitOptions{
		NumPoles: 8, Iterations: 5, ConstrainD: 0.999,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !model.IsStable() {
		t.Fatal("refined model must be stable")
	}
	if len(rep.WorstRelErr) != 3 || rep.BestRound < 0 || rep.BestRound > 2 {
		t.Fatalf("bad refinement report: %+v", rep)
	}
	best := rep.WorstRelErr[rep.BestRound]
	if best > rep.WorstRelErr[0]+1e-12 {
		t.Fatalf("refined model (%v) worse than round 0 (%v)", best, rep.WorstRelErr[0])
	}
	// The reported weights must be reusable in a plain Fit call.
	if _, _, err := repro.Fit(syn.Data, repro.FitOptions{
		NumPoles: 8, Iterations: 5, Weights: rep.Weights, ConstrainD: 0.999,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestFitWithRefinementRejectsBadInput(t *testing.T) {
	freqs := repro.LogFreqGrid(1e3, 2e9, 20, false)
	syn, err := repro.GeneratePDN(repro.PDNSmall, freqs, 50)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := repro.FitWithRefinement(syn.Data, syn.Load, repro.FitOptions{}, 2); err == nil {
		t.Fatal("NumPoles 0 must fail")
	}
	badLoad := *syn.Load
	badLoad.Terms = badLoad.Terms[:2]
	if _, _, err := repro.FitWithRefinement(syn.Data, &badLoad, repro.FitOptions{NumPoles: 4}, 1); err == nil {
		t.Fatal("mismatched load must fail")
	}
}
