// Session library sweep: the repeated-sweep workload of a model-library
// service, run through the long-lived Session API. A fixed-pole library is
// checked three times — cold, warm (same Session, caches resident), and
// warm-from-disk (a new Session that reloaded the persisted caches, as a
// restarted service would) — with identical reports every time and the
// warm sweeps several times faster. A progress sink shows the service-side
// observability hooks; passcheck -cache-dir exposes the same machinery on
// the command line.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	repro "repro"
)

func main() {
	// A library of six synthetic macromodels sharing nothing but their
	// construction recipe: six distinct pole sets, all with violations.
	const libSize = 6
	models := make([]*repro.Macromodel, libSize)
	for i := range models {
		m, err := repro.SyntheticMacromodel(repro.SyntheticModelOptions{
			Ports: 4, Poles: 60, Seed: int64(1 + i), PeakGain: 0.9,
		})
		if err != nil {
			log.Fatal(err)
		}
		models[i] = m
	}

	// One long-lived engine for the whole service lifetime. The progress
	// sink sees every check; a real service would export these as metrics.
	var checks int
	sess := repro.NewSession(
		repro.WithMethod(repro.CheckAdaptive),
		repro.WithProgress(func(ev repro.ProgressEvent) {
			if ev.Kind == repro.ProgressCheck {
				checks++
			}
		}),
	)
	ctx := context.Background()

	sweep := func(s *repro.Session) ([]float64, time.Duration) {
		start := time.Now()
		sigmas := make([]float64, len(models))
		for i, m := range models {
			rep, err := s.Check(ctx, m, repro.CheckOptions{})
			if err != nil {
				log.Fatal(err)
			}
			sigmas[i] = rep.MaxSigma
		}
		return sigmas, time.Since(start)
	}

	// Sweep 1: cold — every pole-basis vector and σ sample is computed.
	cold, tCold := sweep(sess)
	st := sess.CacheStats()
	fmt.Printf("cold sweep:  %8v  (%d caches, %d basis + %d σ entries resident)\n",
		tCold.Round(time.Microsecond), st.Models, st.BasisEntries, st.SigmaEntries)

	// Sweep 2: warm — the same library, served from the session caches.
	warm, tWarm := sweep(sess)
	fmt.Printf("warm sweep:  %8v  (%.1fx faster)\n",
		tWarm.Round(time.Microsecond), float64(tCold)/float64(tWarm))

	// Persist the caches and start a "new process": a fresh Session that
	// loads them back and sweeps warm immediately.
	dir, err := os.MkdirTemp("", "session-caches-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := sess.SaveCache(dir); err != nil {
		log.Fatal(err)
	}
	restarted := repro.NewSession(repro.WithMethod(repro.CheckAdaptive))
	if err := restarted.LoadCache(dir); err != nil {
		log.Fatal(err)
	}
	disk, tDisk := sweep(restarted)
	fmt.Printf("reloaded:    %8v  (new Session, caches from %s)\n", tDisk.Round(time.Microsecond), dir)

	// The three sweeps must agree exactly: caching only moves work, never
	// results.
	for i := range cold {
		if cold[i] != warm[i] || cold[i] != disk[i] {
			log.Fatalf("model %d: σmax drifted across sweeps: %v / %v / %v", i, cold[i], warm[i], disk[i])
		}
	}
	fmt.Printf("σmax identical across all three sweeps; %d checks observed by the progress sink\n", checks)
}
