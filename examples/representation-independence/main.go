// Representation independence (paper §V): the sensitivity-weighted flow
// gives the same loaded answer whether the raw data arrives as 50 Ω
// scattering, scattering on another reference resistance, or admittance
// samples. This example runs all three paths and prints the resulting
// target impedances side by side.
//
// Run with: go run ./examples/representation-independence
package main

import (
	"fmt"
	"log"
	"math/cmplx"

	repro "repro"
)

func main() {
	freqs := repro.LogFreqGrid(1e3, 2e9, 120, true)
	syn, err := repro.GeneratePDN(repro.PDNSmall, freqs, 50)
	if err != nil {
		log.Fatal(err)
	}
	zref, err := repro.TargetImpedance(syn.Data, syn.Load)
	if err != nil {
		log.Fatal(err)
	}

	flow := func(name string, data *repro.SData) []complex128 {
		res, err := repro.Extract(data, syn.Load, repro.ExtractOptions{NumPoles: 10})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		z, err := repro.TargetImpedanceModel(res.Model, freqs, syn.Load)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-22s R0 = %3g Ω, %2d poles, passive\n", name, res.Model.R0(), res.Model.NumPoles())
		return z
	}

	// Path 1: native 50 Ω scattering.
	zNative := flow("native scattering", syn.Data)

	// Path 2: the same structure renormalized to a 5 Ω reference — closer
	// to PDN impedance levels, a common practical choice.
	renorm, err := syn.Data.Renormalized(5)
	if err != nil {
		log.Fatal(err)
	}
	zRenorm := flow("renormalized to 5 Ω", renorm)

	// Path 3: raw admittance data (as an admittance-native solver would
	// emit) converted onto a 20 Ω scattering reference.
	y, err := syn.Data.Admittance()
	if err != nil {
		log.Fatal(err)
	}
	viaY, err := repro.SDataFromAdmittance(freqs, y, 20)
	if err != nil {
		log.Fatal(err)
	}
	zViaY := flow("via admittance, 20 Ω", viaY)

	fmt.Println("\nfreq        nominal     native      5-ohm       via-Y   (|Z_PDN|, Ω)")
	for k := 1; k < len(freqs); k += len(freqs) / 10 {
		fmt.Printf("%9.3g  %10.4g  %10.4g  %10.4g  %10.4g\n",
			freqs[k], cmplx.Abs(zref[k]), cmplx.Abs(zNative[k]), cmplx.Abs(zRenorm[k]), cmplx.Abs(zViaY[k]))
	}
}
