// Classical model order reduction as a baseline: the paper's introduction
// contrasts black-box identification (Vector Fitting) with projection /
// truncation MOR of an existing model ([6], [7]). This example overfits a
// PDN on purpose, compresses the result by balanced truncation to the size
// of a direct low-order fit, and compares the two — including the passivity
// repair that truncation makes necessary.
//
// Run with: go run ./examples/mor-baseline
package main

import (
	"fmt"
	"log"
	"math/cmplx"

	repro "repro"
)

func main() {
	freqs := repro.LogFreqGrid(1e3, 2e9, 120, true)
	syn, err := repro.GeneratePDN(repro.PDNSmall, freqs, 50)
	if err != nil {
		log.Fatal(err)
	}
	ports := syn.Data.Ports()

	// Direct black-box identification at the working order.
	direct, _, err := repro.Fit(syn.Data, repro.FitOptions{NumPoles: 12, Iterations: 8, ConstrainD: 0.999})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("direct VF   : 12 poles (%d states), RMS %.3g\n", 12*ports, direct.RMSError(syn.Data))

	// Overfit, then compress with balanced truncation to the same state
	// budget.
	big, _, err := repro.Fit(syn.Data, repro.FitOptions{NumPoles: 20, Iterations: 8, ConstrainD: 0.999})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overfit VF  : 20 poles (%d states), RMS %.3g\n", 20*ports, big.RMSError(syn.Data))

	red, rep, err := repro.ReduceModel(big, 12*ports)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("balanced truncation: kept %d states, H∞ bound %.3g, RMS %.3g\n",
		rep.Order, rep.Bound, red.RMSError(syn.Data))
	fmt.Printf("Hankel decay: σ1 = %.3g … σ%d = %.3g\n",
		rep.Hankel[0], len(rep.Hankel), rep.Hankel[len(rep.Hankel)-1])

	// Truncation does not preserve passivity — the reduced model goes
	// through the same enforcement machinery as a fitted one.
	chk, err := repro.CheckPassivity(red, repro.CheckOptions{ForceSweep: true, FreqMin: 500, FreqMax: 4e9, SweepPoints: 800})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reduced model passive: %v (σmax = %.6f)\n", chk.Passive, chk.MaxSigma)
	if !chk.Passive {
		enf, err := repro.EnforcePassivity(red, repro.EnforceOptions{
			Check:  repro.CheckOptions{ForceSweep: true, FreqMin: 500, FreqMax: 4e9, SweepPoints: 800},
			ClampD: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("repaired in %d iterations (σmax now %.6f)\n", enf.Iterations, enf.Final.MaxSigma)
	}

	// The verdict, in the norm that matters: the loaded target impedance.
	zref, err := repro.TargetImpedance(syn.Data, syn.Load)
	if err != nil {
		log.Fatal(err)
	}
	zDirect, err := repro.TargetImpedanceModel(direct, freqs, syn.Load)
	if err != nil {
		log.Fatal(err)
	}
	zRed, err := repro.TargetImpedanceModel(red, freqs, syn.Load)
	if err != nil {
		log.Fatal(err)
	}
	var worstDirect, worstRed float64
	for k := range zref {
		if freqs[k] == 0 {
			continue
		}
		ref := cmplx.Abs(zref[k])
		if d := cmplx.Abs(zDirect[k]-zref[k]) / ref; d > worstDirect {
			worstDirect = d
		}
		if d := cmplx.Abs(zRed[k]-zref[k]) / ref; d > worstRed {
			worstRed = d
		}
	}
	fmt.Printf("worst relative Z_PDN error: direct VF %.3g, reduced %.3g\n", worstDirect, worstRed)
}
