// Transient droop: the paper's end use. Extract a passive macromodel of a
// PDN, connect its nominal termination network, and co-simulate a
// synchronous switching event in the time domain — the voltage droop at a
// die port — while auditing the energy balance that passivity guarantees.
//
// Run with: go run ./examples/transient-droop
package main

import (
	"fmt"
	"log"
	"math/cmplx"

	repro "repro"
)

func main() {
	// 1. Data + nominal loads (8-port synthetic PDN).
	freqs := repro.LogFreqGrid(1e3, 2e9, 120, true)
	syn, err := repro.GeneratePDN(repro.PDNSmall, freqs, 50)
	if err != nil {
		log.Fatal(err)
	}

	// 2. The full weighted flow: fit, weight, enforce.
	res, err := repro.Extract(syn.Data, syn.Load, repro.ExtractOptions{NumPoles: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %d poles, passive, RMS fit error %.3g\n",
		res.Model.NumPoles(), res.Fit.RMSErr)

	// 3. Switching step: 1 A total drawn by the die blocks with a 1 ns
	//    edge — the droop waveform is the transient face of Z_PDN.
	rep, wave, err := repro.Droop(res.Model, syn.Load, 1e-9, repro.TransientOptions{
		Dt:          2e-10,
		Steps:       50_000,
		RecordEvery: 25,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("peak droop    : %.4g V (at %.3g µs)\n", rep.PeakDroop, rep.PeakTime*1e6)
	fmt.Printf("settled       : %.4g V (DC prediction %.4g V)\n", rep.Settled, rep.DCExpected)
	fmt.Printf("energy balance: min cumulative %.3g J (≥ 0 ⇒ no generation)\n", rep.MinEnergy)

	// 4. Cross-check against the frequency domain: drive a single tone and
	//    compare the steady-state amplitude with |Z_PDN(jω)| of the model.
	const f0 = 5e7
	out, err := repro.Transient(res.Model, syn.Load, repro.SineWave(f0, 1), repro.TransientOptions{
		Dt: 1 / (50 * f0), Steps: 20_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	amp, _ := out.FitTone(syn.Load.ObsPort, f0, out.T[len(out.T)-1]/2)
	z, err := repro.TargetImpedanceModel(res.Model, []float64{f0}, syn.Load)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tone check    : transient %.4g Ω vs frequency domain %.4g Ω at %.3g MHz\n",
		amp, cmplx.Abs(z[0]), f0/1e6)

	// 5. A few waveform samples for the curious.
	fmt.Println("t (µs)   v_obs (V)")
	for k := 0; k < len(wave.T); k += len(wave.T) / 8 {
		fmt.Printf("%7.3f  %+.5g\n", wave.T[k]*1e6, wave.V[k][syn.Load.ObsPort])
	}
}
