// This example reproduces the paper's core comparison on the 45-port
// testcase: the same non-passive sensitivity-weighted macromodel is made
// passive twice — once with the standard L2 cost and once with the
// sensitivity-weighted cost — and the resulting loaded target impedances
// are compared against the nominal one (the paper's Fig. 5).
//
// Expect a few minutes of runtime: this is the full flow on 45 ports.
package main

import (
	"fmt"
	"log"
	"math/cmplx"

	repro "repro"
)

func main() {
	freqs := repro.LogFreqGrid(1e3, 2e9, 150, true)
	fmt.Println("generating 45-port synthetic PDN...")
	syn, err := repro.GeneratePDN(repro.PDNPaper45, freqs, 50)
	if err != nil {
		log.Fatal(err)
	}

	zref, err := repro.TargetImpedance(syn.Data, syn.Load)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("building sensitivity weight (n_w = 8)...")
	weight, xi, err := repro.BuildWeight(syn.Data, syn.Load, 8)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("weighted Vector Fitting (n = 12)...")
	model, rep, err := repro.Fit(syn.Data, repro.FitOptions{
		NumPoles: 12, Iterations: 6, Weights: xi, ConstrainD: 0.999,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fit RMS (weighted): %.3g\n", rep.RMSErr)

	check := repro.CheckOptions{ForceSweep: true, FreqMin: 500, FreqMax: 4e9, SweepPoints: 1200}
	enforce := func(w *repro.Weight) *repro.Macromodel {
		m := model.Clone()
		rep, err := repro.EnforcePassivity(m, repro.EnforceOptions{
			Check: check, Weight: w, ClampD: true, Margin: 2e-5,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  passive in %d iterations\n", rep.Iterations)
		return m
	}

	fmt.Println("standard enforcement...")
	mStd := enforce(nil)
	fmt.Println("sensitivity-weighted enforcement...")
	mW := enforce(weight)

	zStd, _ := repro.TargetImpedanceModel(mStd, freqs, syn.Load)
	zW, _ := repro.TargetImpedanceModel(mW, freqs, syn.Load)

	fmt.Println("\n|Z_PDN| comparison (Ω):")
	fmt.Printf("%12s %12s %12s %12s\n", "freq", "nominal", "standard", "weighted")
	for _, f := range []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 2e9} {
		i := nearest(freqs, f)
		fmt.Printf("%12.3g %12.4g %12.4g %12.4g\n",
			freqs[i], cmplx.Abs(zref[i]), cmplx.Abs(zStd[i]), cmplx.Abs(zW[i]))
	}

	worst := func(z []complex128) float64 {
		mx := 0.0
		for i, f := range freqs {
			if f == 0 || f > 1e7 {
				continue
			}
			r := cmplx.Abs(z[i]-zref[i]) / cmplx.Abs(zref[i])
			if r > mx {
				mx = r
			}
		}
		return mx
	}
	fmt.Printf("\nworst relative deviation below 10 MHz: standard %.2f, weighted %.2f\n",
		worst(zStd), worst(zW))
	fmt.Println("(the paper's Fig. 5: the standard model deviates by an order of magnitude;")
	fmt.Println(" the weighted model stays on the nominal curve)")
}

func nearest(freqs []float64, f float64) int {
	best, bd := 0, -1.0
	for i, v := range freqs {
		d := v - f
		if d < 0 {
			d = -d
		}
		if bd < 0 || d < bd {
			best, bd = i, d
		}
	}
	return best
}
