// This example exercises the data-interchange path: generate a synthetic
// PDN, export it as a Touchstone .sNp file, read it back, fit a macromodel
// from the file, and save/load the model as JSON — the round trips a
// downstream user relies on.
package main

import (
	"fmt"
	"log"
	"math/cmplx"
	"os"
	"path/filepath"

	repro "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "touchstone-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	freqs := repro.LogFreqGrid(1e3, 2e9, 120, true)
	syn, err := repro.GeneratePDN(repro.PDNSmall, freqs, 50)
	if err != nil {
		log.Fatal(err)
	}
	ports := syn.Data.Ports()

	// Write + read back the Touchstone file.
	tsPath := filepath.Join(dir, fmt.Sprintf("pdn.s%dp", ports))
	if err := repro.WriteTouchstone(tsPath, syn.Data); err != nil {
		log.Fatal(err)
	}
	back, err := repro.ReadTouchstone(tsPath, 0) // port count from extension
	if err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for k := range back.S {
		for i := range back.S[k].Data {
			if d := cmplx.Abs(back.S[k].Data[i] - syn.Data.S[k].Data[i]); d > worst {
				worst = d
			}
		}
	}
	fmt.Printf("touchstone round trip: %d ports, %d points, worst entry error %.2g\n",
		back.Ports(), back.Points(), worst)

	// Fit from the file-based data and persist the model.
	model, rep, err := repro.Fit(back, repro.FitOptions{NumPoles: 10, Iterations: 8, ConstrainD: 0.999})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fit from file: RMS %.3g\n", rep.RMSErr)

	mPath := filepath.Join(dir, "model.json")
	if err := model.SaveFile(mPath); err != nil {
		log.Fatal(err)
	}
	loaded, err := repro.LoadMacromodel(mPath)
	if err != nil {
		log.Fatal(err)
	}
	f0 := 3.3e7
	a := model.EvalEntry(0, 1, f0)
	b := loaded.EvalEntry(0, 1, f0)
	fmt.Printf("JSON round trip: S01(%.2g Hz) = %v vs %v (diff %.2g)\n",
		f0, a, b, cmplx.Abs(a-b))
}
