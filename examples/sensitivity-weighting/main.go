// This example dissects the sensitivity machinery: it computes the
// first-order sensitivity Ξ(ω) of the loaded target impedance both in
// closed form and by Monte-Carlo perturbation (the paper's defining
// experiment, eq. 5), fits the minimum-phase rational weight Ξ̃(s) by
// Magnitude Vector Fitting, and prints the three side by side (Fig. 3).
package main

import (
	"fmt"
	"log"
	"math"

	repro "repro"
)

func main() {
	freqs := repro.LogFreqGrid(1e3, 2e9, 40, false)
	syn, err := repro.GeneratePDN(repro.PDNSmall, freqs, 50)
	if err != nil {
		log.Fatal(err)
	}

	// Closed-form sensitivity (fast, used by the flow).
	xi, err := repro.Sensitivity(syn.Data, syn.Load)
	if err != nil {
		log.Fatal(err)
	}

	// Monte-Carlo estimate (slow, assumption-free reference). With
	// circular complex perturbations E|ΔZ|/σ = √(π/2)·Ξ — the constant
	// offset is irrelevant for weighting purposes.
	mc, err := repro.SensitivityMC(syn.Data, syn.Load, 128, 1e-7)
	if err != nil {
		log.Fatal(err)
	}

	// Rational minimum-phase weight (order 8, like the paper).
	weight, err := repro.FitWeight(freqs, xi, 8, 0)
	if err != nil {
		log.Fatal(err)
	}

	c := math.Sqrt(math.Pi / 2)
	fmt.Printf("%12s %12s %14s %12s\n", "freq [Hz]", "Xi (exact)", "Xi (MC)/c", "|W(f)|")
	for i, f := range freqs {
		if i%4 != 0 {
			continue
		}
		fmt.Printf("%12.3g %12.4g %14.4g %12.4g\n", f, xi[i], mc[i]/c, weight.Eval(f))
	}
	fmt.Println("\nThe MC column (normalized by √(π/2)) tracks the closed form,")
	fmt.Println("and the order-8 weight follows the sensitivity over the band.")
	fmt.Printf("Weight poles (all strictly stable): %v\n", weight.Poles())
}
