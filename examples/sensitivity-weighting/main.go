// This example dissects the sensitivity machinery: it computes the
// first-order sensitivity Ξ(ω) of the loaded target impedance both in
// closed form and by Monte-Carlo perturbation (the paper's defining
// experiment, eq. 5), fits the minimum-phase rational weight Ξ̃(s) by
// Magnitude Vector Fitting, and prints the three side by side (Fig. 3).
// It then puts the weight to work: a non-passive fit of the same data is
// enforced with the sensitivity-weighted cost ‖δS‖²_Ξ, whose Gramian
// P^Ξ,11 is assembled by the closed-form cascade block path (eqs. 18–21,
// rational.CascadeGramian) rather than a dense Lyapunov solve.
package main

import (
	"fmt"
	"log"
	"math"

	repro "repro"
)

func main() {
	freqs := repro.LogFreqGrid(1e3, 2e9, 40, false)
	syn, err := repro.GeneratePDN(repro.PDNSmall, freqs, 50)
	if err != nil {
		log.Fatal(err)
	}

	// Closed-form sensitivity (fast, used by the flow).
	xi, err := repro.Sensitivity(syn.Data, syn.Load)
	if err != nil {
		log.Fatal(err)
	}

	// Monte-Carlo estimate (slow, assumption-free reference). With
	// circular complex perturbations E|ΔZ|/σ = √(π/2)·Ξ — the constant
	// offset is irrelevant for weighting purposes.
	mc, err := repro.SensitivityMC(syn.Data, syn.Load, 128, 1e-7)
	if err != nil {
		log.Fatal(err)
	}

	// Rational minimum-phase weight (order 8, like the paper).
	weight, err := repro.FitWeight(freqs, xi, 8, 0)
	if err != nil {
		log.Fatal(err)
	}

	c := math.Sqrt(math.Pi / 2)
	fmt.Printf("%12s %12s %14s %12s\n", "freq [Hz]", "Xi (exact)", "Xi (MC)/c", "|W(f)|")
	for i, f := range freqs {
		if i%4 != 0 {
			continue
		}
		fmt.Printf("%12.3g %12.4g %14.4g %12.4g\n", f, xi[i], mc[i]/c, weight.Eval(f))
	}
	fmt.Println("\nThe MC column (normalized by √(π/2)) tracks the closed form,")
	fmt.Println("and the order-8 weight follows the sensitivity over the band.")
	fmt.Printf("Weight poles (all strictly stable): %v\n", weight.Poles())

	// Put the weight to work: fit the data with sensitivity weighting
	// (accurate where it matters, but typically non-passive), then enforce
	// passivity under the weighted cost. The cost Gramian P^Ξ,11 is built
	// by the closed-form cascade assembly — the dense Lyapunov solve of
	// the naive construction survives only as a test oracle.
	model, _, err := repro.Fit(syn.Data, repro.FitOptions{
		NumPoles: 10, Weights: xi, ConstrainD: 0.999,
	})
	if err != nil {
		log.Fatal(err)
	}
	chk, err := repro.CheckPassivity(model, repro.CheckOptions{Method: repro.CheckAdaptive})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWeighted fit: %d poles, passive=%v (σmax=%.4f)\n",
		model.NumPoles(), chk.Passive, chk.MaxSigma)
	if !chk.Passive {
		enf, err := repro.EnforcePassivity(model, repro.EnforceOptions{
			Check:  repro.CheckOptions{Method: repro.CheckAdaptive},
			Weight: weight,
			ClampD: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Weighted enforcement (closed-form cascade Gramian): passive=%v in %d iterations, σmax=%.6f\n",
			enf.Passive, enf.Iterations, enf.Final.MaxSigma)
	}
}
