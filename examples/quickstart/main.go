// Quickstart: extract a passive, sensitivity-weighted macromodel from a
// small synthetic PDN in one call and verify it.
package main

import (
	"fmt"
	"log"
	"math/cmplx"

	repro "repro"
)

func main() {
	// 1. Scattering data: an 8-port board/package/die PDN swept from
	//    1 kHz to 2 GHz (plus DC), with its nominal termination network
	//    (die RC blocks, decaps, shorted VRM).
	freqs := repro.LogFreqGrid(1e3, 2e9, 150, true)
	syn, err := repro.GeneratePDN(repro.PDNSmall, freqs, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data: %d ports, %d points\n", syn.Data.Ports(), syn.Data.Points())

	// 2. One-call flow: sensitivity-weighted fit + weighted passivity
	//    enforcement (the paper's complete method).
	res, err := repro.Extract(syn.Data, syn.Load, repro.ExtractOptions{NumPoles: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fit RMS: %.3g\n", res.Fit.RMSErr)
	if res.Enforcement != nil {
		fmt.Printf("made passive in %d iterations\n", res.Enforcement.Iterations)
	}

	// 3. Verify: the model must be passive and reproduce the loaded
	//    target impedance.
	chk, err := repro.CheckPassivity(res.Model, repro.CheckOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("passive: %v (σmax = %.6f)\n", chk.Passive, chk.MaxSigma)

	zref, _ := repro.TargetImpedance(syn.Data, syn.Load)
	zmod, _ := repro.TargetImpedanceModel(res.Model, freqs, syn.Load)
	fmt.Printf("Z_PDN at 1 kHz: nominal %.4g Ω, model %.4g Ω\n",
		abs(zref[1]), abs(zmod[1]))

	// 4. Persist for reuse.
	if err := res.Model.SaveFile("quickstart_model.json"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("model saved to quickstart_model.json")
}

func abs(z complex128) float64 {
	return cmplx.Abs(z)
}
