package repro_test

import (
	"bytes"
	"encoding/json"
	"math"
	"math/cmplx"
	"os"
	"strings"
	"testing"

	repro "repro"
)

func fitSmallModel(t *testing.T, poles int) (*repro.Macromodel, *repro.SyntheticPDN) {
	t.Helper()
	freqs := repro.LogFreqGrid(1e3, 2e9, 40, true)
	syn, err := repro.GeneratePDN(repro.PDNSmall, freqs, 50)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := repro.Fit(syn.Data, repro.FitOptions{NumPoles: poles, Iterations: 5, ConstrainD: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	return m, syn
}

// modelsAgree compares two models entrywise over a frequency set.
func modelsAgree(t *testing.T, a, b *repro.Macromodel, freqs []float64, tol float64) {
	t.Helper()
	if a.Ports() != b.Ports() || a.NumPoles() != b.NumPoles() {
		t.Fatalf("shape mismatch: %d/%d ports, %d/%d poles", a.Ports(), b.Ports(), a.NumPoles(), b.NumPoles())
	}
	for _, f := range freqs {
		ha := a.Eval(f)
		hb := b.Eval(f)
		for i := range ha {
			for j := range ha[i] {
				if d := cmplx.Abs(ha[i][j] - hb[i][j]); d > tol {
					t.Fatalf("f=%g (%d,%d): |Δ| = %g", f, i, j, d)
				}
			}
		}
	}
}

func TestReducedModelSerializes(t *testing.T) {
	// Models produced by balanced truncation (rank-one complex residues,
	// many poles) must survive the JSON round trip like fitted ones do.
	m, syn := fitSmallModel(t, 12)
	red, _, err := repro.ReduceModel(m, 40)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(red)
	if err != nil {
		t.Fatal(err)
	}
	var back repro.Macromodel
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	modelsAgree(t, red, &back, syn.Data.Freq[:10], 1e-10)
}

func TestUnmarshalRejectsStructurallyBrokenModels(t *testing.T) {
	var m repro.Macromodel
	cases := map[string]string{
		"count mismatch":     `{"r0":50,"poles":[[1,0]],"residues":[],"d":[[0]]}`,
		"dangling conjugate": `{"r0":50,"poles":[[-1,2]],"residues":[[[[1,0]]]],"d":[[0]]}`,
		"ragged residue row": `{"r0":50,"poles":[[-1,0]],"residues":[[[[1,0],[2,0]]]],"d":[[0]]}`,
		"ragged D row":       `{"r0":50,"poles":[[-1,0]],"residues":[[[[1,0]]]],"d":[[0,1]]}`,
		"non-conjugate pair": `{"r0":50,"poles":[[-1,2],[-1,3]],"residues":[[[[1,0]]],[[[1,0]]]],"d":[[0]]}`,
	}
	for name, c := range cases {
		if err := json.Unmarshal([]byte(c), &m); err == nil {
			t.Fatalf("%s: malformed model accepted", name)
		}
	}
}

func TestEnforcePassivityByScalingPublicAPI(t *testing.T) {
	// The strawman baseline must terminate passive through the public
	// wrapper too, reporting a meaningful γ.
	m, syn := fitSmallModel(t, 12)
	chk, err := repro.CheckPassivity(m, repro.CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if chk.Passive {
		t.Skip("fit happened to be passive; nothing to scale")
	}
	rep, err := repro.EnforcePassivityByScaling(m, repro.EnforceOptions{ClampD: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passive || !rep.Final.Passive {
		t.Fatal("scaling must end passive")
	}
	if rep.Gamma <= 0 || rep.Gamma >= 1 {
		t.Fatalf("expected 0 < γ < 1 for a non-passive fit, got %v", rep.Gamma)
	}
	if rep.Checks < 2 {
		t.Fatalf("bisection should need several checks, got %d", rep.Checks)
	}
	// The scaled model must still beat a zeroed model in fit quality: γ>0
	// keeps some response.
	if rms := m.RMSError(syn.Data); rms >= 1 {
		t.Fatalf("scaled model lost all structure: RMS %v", rms)
	}
}

// TestWeightJSONRoundTrip: a fitted sensitivity weight must survive
// SaveFile/LoadWeightFile with its magnitude response intact — bitwise, in
// fact, since the JSON stores full float64 precision.
func TestWeightJSONRoundTrip(t *testing.T) {
	freqs := repro.LogFreqGrid(1e3, 2e9, 40, false)
	syn, err := repro.GeneratePDN(repro.PDNSmall, freqs, 50)
	if err != nil {
		t.Fatal(err)
	}
	xi, err := repro.Sensitivity(syn.Data, syn.Load)
	if err != nil {
		t.Fatal(err)
	}
	w, err := repro.FitWeight(freqs, xi, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/weight.json"
	if err := w.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := repro.LoadWeightFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Order() != w.Order() {
		t.Fatalf("order changed: %d vs %d", back.Order(), w.Order())
	}
	for _, f := range []float64{1e3, 1e5, 1e7, 1e9} {
		if back.Eval(f) != w.Eval(f) {
			t.Fatalf("|W(%g)| changed across round trip: %v vs %v", f, back.Eval(f), w.Eval(f))
		}
	}
	if _, err := repro.LoadWeightFile(t.TempDir() + "/missing.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestTouchstoneStreamRoundTrip: WriteTouchstoneTo/ReadTouchstoneFrom
// carry a dataset through an in-memory stream with no temp files, and the
// path-based functions (which now delegate to them) agree with the stream
// pair exactly.
func TestTouchstoneStreamRoundTrip(t *testing.T) {
	freqs := repro.LogFreqGrid(1e3, 2e9, 25, false)
	syn, err := repro.GeneratePDN(repro.PDNSmall, freqs, 50)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := repro.WriteTouchstoneTo(&buf, syn.Data); err != nil {
		t.Fatal(err)
	}
	back, err := repro.ReadTouchstoneFrom(bytes.NewReader(buf.Bytes()), syn.Data.Ports())
	if err != nil {
		t.Fatal(err)
	}
	if back.Ports() != syn.Data.Ports() || back.Points() != syn.Data.Points() {
		t.Fatalf("shape changed: %d ports/%d points, want %d/%d",
			back.Ports(), back.Points(), syn.Data.Ports(), syn.Data.Points())
	}
	for k := range back.Freq {
		for i := 0; i < back.Ports(); i++ {
			for j := 0; j < back.Ports(); j++ {
				if d := cmplx.Abs(back.At(k, i, j) - syn.Data.At(k, i, j)); d > 1e-9 {
					t.Fatalf("sample %d (%d,%d): |Δ| = %g", k, i, j, d)
				}
			}
		}
	}
	// The stream reader cannot infer ports and must say so.
	if _, err := repro.ReadTouchstoneFrom(bytes.NewReader(buf.Bytes()), 0); err == nil {
		t.Fatal("ReadTouchstoneFrom accepted ports=0")
	}
	// Path-based functions agree with the stream pair byte for byte.
	path := t.TempDir() + "/net.s8p"
	if err := repro.WriteTouchstone(path, syn.Data); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, buf.Bytes()) {
		t.Fatal("WriteTouchstone and WriteTouchstoneTo produced different bytes")
	}
	fromDisk, err := repro.ReadTouchstone(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fromDisk.Points() != back.Points() || fromDisk.Ports() != back.Ports() {
		t.Fatal("ReadTouchstone and ReadTouchstoneFrom disagree")
	}
}

// TestWeightStreamRoundTrip: Weight.Save/ReadWeight mirror the file pair
// on an arbitrary stream, including the stability gate.
func TestWeightStreamRoundTrip(t *testing.T) {
	freqs := repro.LogFreqGrid(1e3, 2e9, 40, false)
	syn, err := repro.GeneratePDN(repro.PDNSmall, freqs, 50)
	if err != nil {
		t.Fatal(err)
	}
	xi, err := repro.Sensitivity(syn.Data, syn.Load)
	if err != nil {
		t.Fatal(err)
	}
	w, err := repro.FitWeight(freqs, xi, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := repro.ReadWeight(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{1e3, 1e6, 1e9} {
		if back.Eval(f) != w.Eval(f) {
			t.Fatalf("|W(%g)| changed across stream round trip", f)
		}
	}
	// An unstable weight must be rejected by the stream reader too.
	unstable := `{"poles":[[1,0]],"residues":[[1,0]],"d":0}`
	if _, err := repro.ReadWeight(strings.NewReader(unstable)); err == nil {
		t.Fatal("ReadWeight accepted unstable poles")
	}
}

// TestEnforcePassivityBatchPerModelWeights: the public batch path accepts
// per-model weights and stays bitwise identical to sequential per-model
// weighted EnforcePassivity.
func TestEnforcePassivityBatchPerModelWeights(t *testing.T) {
	freqs := repro.LogFreqGrid(1e3, 2e9, 40, false)
	syn, err := repro.GeneratePDN(repro.PDNSmall, freqs, 50)
	if err != nil {
		t.Fatal(err)
	}
	xi, err := repro.Sensitivity(syn.Data, syn.Load)
	if err != nil {
		t.Fatal(err)
	}
	weight, err := repro.FitWeight(freqs, xi, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	build := func() []*repro.Macromodel {
		lib := make([]*repro.Macromodel, n)
		for i := range lib {
			m, err := repro.SyntheticMacromodel(repro.SyntheticModelOptions{
				Ports: 2, Poles: 14, Seed: int64(200 + i), PeakGain: 1.1,
			})
			if err != nil {
				t.Fatal(err)
			}
			lib[i] = m
		}
		return lib
	}
	opts := repro.EnforceOptions{Check: repro.CheckOptions{Method: repro.CheckAdaptive}, Weight: weight}

	seq := build()
	for i, m := range seq {
		if _, err := repro.EnforcePassivity(m, opts); err != nil {
			t.Fatalf("sequential model %d: %v", i, err)
		}
	}
	bat := build()
	rep, err := repro.EnforcePassivityBatch(bat, repro.BatchEnforceOptions{
		Enforce: repro.EnforceOptions{Check: opts.Check},
		Weights: []*repro.Weight{weight, weight, weight},
		Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range bat {
		if rep.Errors[i] != nil {
			t.Fatalf("batch model %d: %v", i, rep.Errors[i])
		}
		for _, f := range []float64{0.5, 7, 90, 1100} {
			a, b := seq[i].Eval(f), bat[i].Eval(f)
			for r := range a {
				for c := range a[r] {
					if a[r][c] != b[r][c] {
						t.Fatalf("model %d: batch with per-model weights differs bitwise at f=%g", i, f)
					}
				}
			}
		}
	}
	if _, err := repro.EnforcePassivityBatch(bat, repro.BatchEnforceOptions{
		Weights: []*repro.Weight{weight},
	}); err == nil {
		t.Fatal("mis-sized Weights accepted")
	}
}

func TestReportWithUnboundedBandsSerializes(t *testing.T) {
	// An unbounded violation band and an open certificate tail both carry
	// FreqHiHz = +Inf, which encoding/json rejects outright — the custom
	// band marshalers encode it as the string "Inf" so a report survives
	// the passivityd wire (and any other JSON sink) and decodes back to
	// the same infinity.
	rep := &repro.PassivityReport{
		Passive:  false,
		MaxSigma: 42.3,
		Violations: []repro.PassivityViolation{
			{FreqPeakHz: 1e6, SigmaPeak: 1.01, FreqLoHz: 5e5, FreqHiHz: 2e6},
			{FreqPeakHz: 2e9, SigmaPeak: 42.3, FreqLoHz: 1.6e9, FreqHiHz: math.Inf(1)},
		},
		Certificate: &repro.PassivityCertificate{
			Stage:     "tail-bound",
			Intervals: 3,
			Open:      []repro.CertificateBand{{FreqLoHz: 0, FreqHiHz: math.Inf(1)}},
		},
	}
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !strings.Contains(string(blob), `"Inf"`) {
		t.Fatalf("unbounded edges not string-encoded: %s", blob)
	}
	var back repro.PassivityReport
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got := back.Violations[1].FreqHiHz; !math.IsInf(got, 1) {
		t.Fatalf("violation hi edge round-tripped to %v, want +Inf", got)
	}
	if got := back.Violations[0].FreqHiHz; got != 2e6 {
		t.Fatalf("bounded hi edge round-tripped to %v, want 2e6", got)
	}
	if got := back.Certificate.Open[0].FreqHiHz; !math.IsInf(got, 1) {
		t.Fatalf("open band hi edge round-tripped to %v, want +Inf", got)
	}
}
